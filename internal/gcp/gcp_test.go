package gcp

import (
	"errors"
	"testing"
	"time"

	"statebench/internal/chaos"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// fixedParams makes every latency deterministic for exact assertions.
func fixedParams() platform.GCPParams {
	p := platform.DefaultGCP()
	p.InvokeRTT = sim.Fixed{D: 10 * time.Millisecond}
	p.ColdStartBase = sim.Fixed{D: 500 * time.Millisecond}
	p.CodeFetchBW = 50e6 // 50 MB/s
	p.WarmStart = sim.Fixed{D: 5 * time.Millisecond}
	p.KeepAlive = time.Minute
	p.BurstConcurrency = 2
	p.StepOverhead = sim.Fixed{D: 20 * time.Millisecond}
	p.CallDispatch = sim.Fixed{D: 30 * time.Millisecond}
	return p
}

func echo(ctx *Context, payload []byte) ([]byte, error) {
	ctx.Busy(100 * time.Millisecond)
	return payload, nil
}

func TestRegisterValidation(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewFunctions(k, fixedParams())
	if _, err := s.Register(Config{Name: "f", MemoryMB: 300, Handler: echo}); err == nil {
		t.Fatal("non-tier memory accepted")
	}
	if _, err := s.Register(Config{Name: "", MemoryMB: 256, Handler: echo}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := s.Register(Config{Name: "f", MemoryMB: 256}); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := s.Register(Config{Name: "f", MemoryMB: 256, Handler: echo}); err != nil {
		t.Fatalf("valid register failed: %v", err)
	}
	if _, err := s.Register(Config{Name: "f", MemoryMB: 256, Handler: echo}); err == nil {
		t.Fatal("duplicate register accepted")
	}
}

func TestColdThenWarm(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewFunctions(k, fixedParams())
	if _, err := s.Register(Config{Name: "f", MemoryMB: 256, CodeSizeMB: 50, Handler: echo}); err != nil {
		t.Fatal(err)
	}
	var first, second *Invocation
	k.Spawn("client", func(p *sim.Proc) {
		first, _ = s.Invoke(p, "f", []byte("a"))
		second, _ = s.Invoke(p, "f", []byte("b"))
	})
	k.Run()
	if !first.Cold {
		t.Fatal("first invoke should be cold")
	}
	// 500 ms base + 50 MB / 50 MBps = 1 s fetch => 1.5 s cold start.
	if first.ColdStartDelay != 1500*time.Millisecond {
		t.Fatalf("cold start = %v, want 1.5s", first.ColdStartDelay)
	}
	if second.Cold {
		t.Fatal("second invoke should reuse the warm instance")
	}
	// Warm total: 10ms RTT + 5ms warm start + 100ms exec.
	if second.Total != 115*time.Millisecond {
		t.Fatalf("warm total = %v, want 115ms", second.Total)
	}
}

func TestTimeoutClampsBilling(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewFunctions(k, fixedParams())
	if _, err := s.Register(Config{Name: "h", MemoryMB: 256, Timeout: time.Second, Handler: func(ctx *Context, _ []byte) ([]byte, error) {
		ctx.Busy(10 * time.Second)
		return []byte("never"), nil
	}}); err != nil {
		t.Fatal(err)
	}
	var inv *Invocation
	k.Spawn("client", func(p *sim.Proc) { inv, _ = s.Invoke(p, "h", nil) })
	k.Run()
	var te *TimeoutError
	if !errors.As(inv.Err, &te) {
		t.Fatalf("err = %v, want TimeoutError", inv.Err)
	}
	if inv.Output != nil {
		t.Fatal("timed-out invoke returned output")
	}
	if inv.ExecTime != time.Second {
		t.Fatalf("billed exec = %v, want capped at 1s", inv.ExecTime)
	}
}

func TestTimeLimitCapsConfiguredTimeout(t *testing.T) {
	k := sim.NewKernel(1)
	params := fixedParams()
	s := NewFunctions(k, params)
	f, err := s.Register(Config{Name: "f", MemoryMB: 256, Timeout: time.Hour, Handler: echo})
	if err != nil {
		t.Fatal(err)
	}
	if f.Config().Timeout != params.TimeLimit {
		t.Fatalf("timeout = %v, want clamped to the %v gen-1 limit", f.Config().Timeout, params.TimeLimit)
	}
}

func TestBillingRoundsTo100msOnConfiguredTier(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewFunctions(k, fixedParams())
	f, err := s.Register(Config{Name: "f", MemoryMB: 2048, ConsumedMemMB: 400, Handler: func(ctx *Context, _ []byte) ([]byte, error) {
		ctx.Busy(110 * time.Millisecond)
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := s.Invoke(p, "f", nil); err != nil {
			t.Errorf("invoke: %v", err)
		}
	})
	k.Run()
	want := 0.2 * 2048.0 / 1024 // 200 ms at 2 GB
	if d := f.Meter.BilledGBs - want; d > 1e-9 || d < -1e-9 {
		t.Fatalf("BilledGBs = %v, want %v", f.Meter.BilledGBs, want)
	}
}

func TestWorkflowStepsAndFirstCallDelay(t *testing.T) {
	k := sim.NewKernel(1)
	params := fixedParams()
	fns := NewFunctions(k, params)
	wfs := NewWorkflows(k, params, fns)
	if _, err := fns.Register(Config{Name: "f", MemoryMB: 256, Handler: echo}); err != nil {
		t.Fatal(err)
	}
	err := wfs.Create("wf", func(ctx *Ctx, input map[string]any) (map[string]any, error) {
		out, err := ctx.Call("f", []byte("x"))
		if err != nil {
			return nil, err
		}
		return map[string]any{"echo": string(out)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var exec *Execution
	k.Spawn("client", func(p *sim.Proc) { exec, _ = wfs.Execute(p, "wf", nil) })
	k.Run()
	if exec.Err != nil {
		t.Fatal(exec.Err)
	}
	// init step + one call step.
	if exec.Steps != 2 || wfs.TotalSteps != 2 {
		t.Fatalf("steps = %d (total %d), want 2", exec.Steps, wfs.TotalSteps)
	}
	if exec.Output["echo"] != "x" {
		t.Fatalf("output = %v", exec.Output)
	}
	if exec.FirstCallDelay < 0 {
		t.Fatal("FirstCallDelay unset despite a completed call")
	}
	// The handler started after init (20ms) + dispatch (30ms) + RTT
	// (10ms) + cold start; it must therefore exceed the scheduling
	// overheads but stay below the whole execution.
	if exec.FirstCallDelay <= 60*time.Millisecond || exec.FirstCallDelay >= exec.Duration() {
		t.Fatalf("FirstCallDelay = %v, duration %v", exec.FirstCallDelay, exec.Duration())
	}
}

func TestWorkflowParallelOverlaps(t *testing.T) {
	k := sim.NewKernel(1)
	params := fixedParams()
	params.BurstConcurrency = 8
	fns := NewFunctions(k, params)
	wfs := NewWorkflows(k, params, fns)
	if _, err := fns.Register(Config{Name: "slow", MemoryMB: 256, Handler: func(ctx *Context, _ []byte) ([]byte, error) {
		ctx.Busy(time.Second)
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	branch := func(bc *Ctx) error {
		_, err := bc.Call("slow", nil)
		return err
	}
	if err := wfs.Create("wf", func(ctx *Ctx, _ map[string]any) (map[string]any, error) {
		return nil, ctx.Parallel(branch, branch, branch, branch)
	}); err != nil {
		t.Fatal(err)
	}
	var exec *Execution
	k.Spawn("client", func(p *sim.Proc) { exec, _ = wfs.Execute(p, "wf", nil) })
	k.Run()
	if exec.Err != nil {
		t.Fatal(exec.Err)
	}
	// Four 1s branches in parallel must take far less than 4s serial
	// (cold starts differ per instance, so allow generous headroom).
	if d := exec.Duration(); d >= 3*time.Second {
		t.Fatalf("parallel block took %v, want well under the 4s serial time", d)
	}
	// init + parallel + 4 call steps.
	if exec.Steps != 6 {
		t.Fatalf("steps = %d, want 6", exec.Steps)
	}
}

func TestWorkflowRetryRecoversInjectedFault(t *testing.T) {
	k := sim.NewKernel(1)
	params := fixedParams()
	fns := NewFunctions(k, params)
	wfs := NewWorkflows(k, params, fns)
	inj := chaos.NewInjector(k, &chaos.Plan{Rules: []chaos.Rule{
		{Component: "gwf", Kind: chaos.TransientError, Rate: 1, MaxFaults: 1},
	}})
	wfs.Chaos = inj
	fns.Chaos = inj
	if _, err := fns.Register(Config{Name: "f", MemoryMB: 256, Handler: echo}); err != nil {
		t.Fatal(err)
	}
	if err := wfs.Create("wf", func(ctx *Ctx, _ map[string]any) (map[string]any, error) {
		out, err := ctx.Call("f", []byte("y"))
		if err != nil {
			return nil, err
		}
		return map[string]any{"echo": string(out)}, nil
	}); err != nil {
		t.Fatal(err)
	}
	var exec *Execution
	k.Spawn("client", func(p *sim.Proc) { exec, _ = wfs.Execute(p, "wf", nil) })
	k.Run()
	if exec.Err != nil {
		t.Fatalf("retry policy did not absorb the connector fault: %v", exec.Err)
	}
	st := inj.Stats()
	if st.Injected != 1 {
		t.Fatalf("injected = %d, want exactly 1 (MaxFaults)", st.Injected)
	}
	if st.Retries < 1 {
		t.Fatal("no retry recorded for the recovered fault")
	}
	// init + failed attempt + successful attempt: retried steps bill.
	if exec.Steps != 3 {
		t.Fatalf("steps = %d, want 3 (retried call step billed again)", exec.Steps)
	}
}

func TestWorkflowCallExhaustsRetries(t *testing.T) {
	k := sim.NewKernel(1)
	params := fixedParams()
	fns := NewFunctions(k, params)
	wfs := NewWorkflows(k, params, fns)
	boom := errors.New("boom")
	if _, err := fns.Register(Config{Name: "f", MemoryMB: 256, Handler: func(*Context, []byte) ([]byte, error) {
		return nil, boom
	}}); err != nil {
		t.Fatal(err)
	}
	if err := wfs.Create("wf", func(ctx *Ctx, _ map[string]any) (map[string]any, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	var err error
	k.Spawn("client", func(p *sim.Proc) {
		ctx := &Ctx{p: p, exec: &Execution{svc: wfs}, svc: wfs}
		_, err = ctx.Call("f", nil)
	})
	k.Run()
	var ce *CallError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CallError after exhausted retries", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("CallError does not unwrap to the handler error: %v", err)
	}
}

func TestUsageAggregatesAcrossServices(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, fixedParams())
	if _, err := c.Functions.Register(Config{Name: "f", MemoryMB: 256, Handler: func(ctx *Context, _ []byte) ([]byte, error) {
		ctx.Busy(50 * time.Millisecond)
		c.GCS.Put(ctx.Proc(), "k", []byte("v"))
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Workflows.Create("wf", func(ctx *Ctx, _ map[string]any) (map[string]any, error) {
		_, err := ctx.Call("f", nil)
		return nil, err
	}); err != nil {
		t.Fatal(err)
	}
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := c.Workflows.Execute(p, "wf", nil); err != nil {
			t.Errorf("execute: %v", err)
		}
	})
	k.Run()
	u := c.Usage(true)
	if u.Requests != 1 || u.GBs <= 0 || u.Exec <= 0 {
		t.Fatalf("usage = %+v", u)
	}
	if u.StatefulTxns != 2 || u.AllTxns != 2 {
		t.Fatalf("workflow steps in usage = %d/%d, want 2", u.StatefulTxns, u.AllTxns)
	}
	if u.BlobTxns == 0 {
		t.Fatal("GCS transactions missing from usage")
	}
	c.ResetMeters()
	u = c.Usage(true)
	if u.Requests != 0 || u.StatefulTxns != 0 || u.BlobTxns != 0 {
		t.Fatalf("usage after reset = %+v", u)
	}
}
