package gcp

import (
	"fmt"
	"time"

	"statebench/internal/chaos"
	"statebench/internal/obs/span"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// Workflows is the simulated GCP Workflows engine: a code-first
// orchestrator (workflow definitions are Go closures standing in for
// the YAML DSL) whose call steps invoke Cloud Functions. Every
// executed step is billed — steps are GCP's analogue of AWS's state
// transitions and the StatefulTxns of the GCP price book.
type Workflows struct {
	k      *sim.Kernel
	rng    *sim.RNG
	params platform.GCPParams
	fns    *Functions
	wfs    map[string]Definition
	// TotalSteps aggregates billable executed steps across all
	// executions since the last reset (retried steps bill again).
	TotalSteps int64
	// Tracer, when non-nil, emits an orchestration span per execution
	// and a transition span per billable step.
	Tracer *span.Tracer
	// Chaos, when non-nil, can fail call steps at the connector
	// boundary (component "gwf"), driving the default retry policy.
	Chaos *chaos.Injector
}

// Definition is one workflow body. It runs on the calling process's
// virtual-time context; all platform effects go through ctx.
type Definition func(ctx *Ctx, input map[string]any) (map[string]any, error)

// NewWorkflows creates a Workflows engine bound to a Functions service.
func NewWorkflows(k *sim.Kernel, params platform.GCPParams, fns *Functions) *Workflows {
	return &Workflows{k: k, rng: k.Stream("gcp/workflows"), params: params, fns: fns, wfs: make(map[string]Definition)}
}

// Create registers a workflow definition under name.
func (s *Workflows) Create(name string, def Definition) error {
	if name == "" {
		return fmt.Errorf("gwf: workflow name required")
	}
	if def == nil {
		return fmt.Errorf("gwf: workflow %q has no definition", name)
	}
	if _, dup := s.wfs[name]; dup {
		return fmt.Errorf("gwf: workflow %q already exists", name)
	}
	s.wfs[name] = def
	return nil
}

// ResetMeters zeroes the aggregate step counter.
func (s *Workflows) ResetMeters() { s.TotalSteps = 0 }

// Execution records one workflow run.
type Execution struct {
	Workflow  string
	StartedAt sim.Time
	EndedAt   sim.Time
	// Steps is the billable executed-step count of this run.
	Steps int64
	// FirstCallDelay is the time from execution start until the first
	// called function's handler began executing — the cold-start metric
	// mirroring sfn.Execution.FirstTaskDelay. Negative: no call ran.
	FirstCallDelay time.Duration
	Output         map[string]any
	Err            error

	svc          *Workflows
	firstCallAt  sim.Time
	sawFirstCall bool
}

// Duration returns the end-to-end execution latency.
func (e *Execution) Duration() time.Duration { return e.EndedAt - e.StartedAt }

// Ctx is the workflow-body handle; it meters steps and routes calls.
type Ctx struct {
	p    *sim.Proc
	exec *Execution
	svc  *Workflows
}

// Proc returns the simulation process running this workflow branch.
func (c *Ctx) Proc() *sim.Proc { return c.p }

// Execute runs workflow name with input, blocking process p until the
// definition returns.
func (s *Workflows) Execute(p *sim.Proc, name string, input map[string]any) (*Execution, error) {
	def, ok := s.wfs[name]
	if !ok {
		return nil, fmt.Errorf("gwf: no such workflow %q", name)
	}
	exec := &Execution{Workflow: name, StartedAt: p.Now(), FirstCallDelay: -1, svc: s}
	caller := p.TraceCtx
	execSpan := s.Tracer.Start(p.Now(), span.KindOrchestration, "gwf/"+name, caller)
	p.TraceCtx = execSpan.Context()
	ctx := &Ctx{p: p, exec: exec, svc: s}
	// The engine's init step (argument binding) bills like any other.
	ctx.step("init")
	out, err := def(ctx, input)
	p.TraceCtx = caller
	exec.EndedAt = p.Now()
	exec.Output = out
	exec.Err = err
	if exec.sawFirstCall {
		exec.FirstCallDelay = exec.firstCallAt - exec.StartedAt
	}
	if execSpan.Live() {
		execSpan.End(p.Now(), span.A("steps", fmt.Sprintf("%d", exec.Steps)))
	}
	return exec, nil
}

// step meters one billable executed step and applies the engine's
// per-step scheduling overhead.
func (c *Ctx) step(name string) {
	c.exec.Steps++
	c.svc.TotalSteps++
	tStart := c.p.Now()
	c.p.Sleep(c.svc.params.StepOverhead.Sample(c.svc.rng))
	c.svc.Tracer.Emit(span.KindTransition, "gwf/step/"+name, tStart, c.p.Now(), c.p.TraceCtx)
}

// CallError reports a call step that failed after exhausting retries.
type CallError struct {
	Function string
	Cause    error
}

func (e *CallError) Error() string {
	return fmt.Sprintf("gwf: call %s failed: %v", e.Function, e.Cause)
}

func (e *CallError) Unwrap() error { return e.Cause }

// Call executes one call step: it invokes a Cloud Function and returns
// its output, retrying transient failures under the engine's default
// retry policy (5 attempts, exponential backoff — the YAML
// `http.default_retry` equivalent). Each attempt is a billed step.
func (c *Ctx) Call(fn string, payload []byte) ([]byte, error) {
	const maxAttempts = 5
	backoff := time.Second
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			c.svc.Chaos.NoteRetry(backoff)
			c.p.Sleep(backoff)
			backoff *= 2
		}
		c.step(fn)
		out, err := c.callOnce(fn, payload)
		if err == nil {
			return out, nil
		}
		lastErr = err
		var infra *infraError
		if isInfra(err, &infra) {
			// Unknown function / oversized payload: not retriable.
			return nil, infra.err
		}
	}
	return nil, &CallError{Function: fn, Cause: lastErr}
}

// infraError marks non-retriable infrastructure failures inside the
// retry loop.
type infraError struct{ err error }

func (e *infraError) Error() string { return e.err.Error() }

func isInfra(err error, out **infraError) bool {
	ie, ok := err.(*infraError)
	if ok {
		*out = ie
	}
	return ok
}

// callOnce performs one call attempt: chaos check at the connector
// boundary, dispatch hop, then the synchronous function invocation.
func (c *Ctx) callOnce(fn string, payload []byte) ([]byte, error) {
	p := c.p
	if c.svc.Chaos != nil {
		if flt, ok := c.svc.Chaos.Next(p.TraceCtx, "gwf", fn); ok {
			// The step fails at the connector (transient 5xx, worker
			// lost) after Delay of wasted wall time.
			p.Sleep(flt.Delay)
			return nil, &chaos.FaultError{Kind: flt.Kind, Component: "gwf", Name: fn}
		}
	}
	dStart := p.Now()
	p.Sleep(c.svc.params.CallDispatch.Sample(c.svc.rng))
	c.svc.Tracer.Emit(span.KindTransition, "gwf/dispatch/"+fn, dStart, p.Now(), p.TraceCtx)
	inv, err := c.svc.fns.Invoke(p, fn, payload)
	if err != nil {
		return nil, &infraError{err: err}
	}
	c.noteCallStart(p.Now() - inv.ExecTime)
	if inv.Err != nil {
		return nil, inv.Err
	}
	return inv.Output, nil
}

// noteCallStart tracks the earliest called-handler start for the
// cold-start metric.
func (c *Ctx) noteCallStart(handlerStart sim.Time) {
	e := c.exec
	if !e.sawFirstCall || handlerStart < e.firstCallAt {
		e.firstCallAt = handlerStart
		e.sawFirstCall = true
	}
}

// Parallel executes branches concurrently (the DSL's `parallel` block;
// one billed step for the block itself) and blocks until all complete,
// returning the first branch error.
func (c *Ctx) Parallel(branches ...func(bc *Ctx) error) error {
	c.step("parallel")
	if len(branches) == 0 {
		return nil
	}
	k := c.p.Kernel()
	futures := make([]*sim.Future[struct{}], len(branches))
	branchCtx := c.p.TraceCtx
	for i, branch := range branches {
		branch := branch
		f := sim.NewFuture[struct{}](k)
		futures[i] = f
		k.Spawn(fmt.Sprintf("gwf-branch-%d", i), func(bp *sim.Proc) {
			bp.TraceCtx = branchCtx
			bc := &Ctx{p: bp, exec: c.exec, svc: c.svc}
			f.Complete(struct{}{}, branch(bc))
		})
	}
	_, err := sim.AwaitAll(c.p, futures)
	return err
}
