package trace

import (
	"strings"
	"testing"
	"time"
)

func seeded() *Collector {
	c := NewCollector("app")
	c.Invocation(1*time.Second, "prep", 100*time.Millisecond)
	c.ColdStart(1*time.Second, "prep", 2*time.Second)
	c.Invocation(5*time.Second, "train", 30*time.Second)
	c.Invocation(40*time.Second, "prep", 120*time.Millisecond)
	c.Error(41*time.Second, "train", "boom")
	return c
}

func TestSelectByKindFunctionWindow(t *testing.T) {
	c := seeded()
	if got := len(c.Select(Query{})); got != 5 {
		t.Fatalf("all = %d", got)
	}
	if got := len(c.Select(Query{Kind: KindInvocation})); got != 3 {
		t.Fatalf("invocations = %d", got)
	}
	if got := len(c.Select(Query{Function: "prep"})); got != 3 {
		t.Fatalf("prep records = %d", got)
	}
	if got := len(c.Select(Query{From: 2 * time.Second, Until: 41 * time.Second})); got != 3 {
		t.Fatalf("windowed = %d", got)
	}
	if got := len(c.Select(Query{Kind: KindError, Function: "train"})); got != 1 {
		t.Fatalf("errors = %d", got)
	}
}

func TestDurations(t *testing.T) {
	c := seeded()
	ds := c.Durations(Query{Kind: KindInvocation, Function: "prep"})
	if len(ds) != 2 || ds[0] != 100*time.Millisecond {
		t.Fatalf("durations = %v", ds)
	}
}

func TestSummarize(t *testing.T) {
	c := seeded()
	sums := c.Summarize(Query{Kind: KindInvocation})
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].Function != "prep" || sums[0].Count != 2 || sums[0].Max != 120*time.Millisecond {
		t.Fatalf("prep summary = %+v", sums[0])
	}
	if sums[1].Function != "train" || sums[1].Total != 30*time.Second {
		t.Fatalf("train summary = %+v", sums[1])
	}
}

func TestRetentionCap(t *testing.T) {
	c := NewCollector("capped")
	c.Cap = 3
	for i := 0; i < 10; i++ {
		c.Invocation(time.Duration(i)*time.Second, "f", time.Millisecond)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	recs := c.Select(Query{})
	if recs[0].At != 7*time.Second {
		t.Fatalf("oldest retained = %v, want 7s", recs[0].At)
	}
}

func TestDump(t *testing.T) {
	c := seeded()
	out := c.Dump(Query{Function: "train"})
	if !strings.Contains(out, "train") || !strings.Contains(out, "boom") {
		t.Fatalf("dump:\n%s", out)
	}
	if strings.Contains(out, "prep") {
		t.Fatal("dump leaked filtered records")
	}
}
