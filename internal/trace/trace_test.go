package trace

import (
	"strings"
	"testing"
	"time"

	"statebench/internal/sim"
)

func seeded() *Collector {
	c := NewCollector("app")
	c.Invocation(1*time.Second, "prep", 100*time.Millisecond)
	c.ColdStart(1*time.Second, "prep", 2*time.Second)
	c.Invocation(5*time.Second, "train", 30*time.Second)
	c.Invocation(40*time.Second, "prep", 120*time.Millisecond)
	c.Error(41*time.Second, "train", "boom")
	return c
}

func TestSelectByKindFunctionWindow(t *testing.T) {
	c := seeded()
	if got := len(c.Select(Query{})); got != 5 {
		t.Fatalf("all = %d", got)
	}
	if got := len(c.Select(Query{Kind: KindInvocation})); got != 3 {
		t.Fatalf("invocations = %d", got)
	}
	if got := len(c.Select(Query{Function: "prep"})); got != 3 {
		t.Fatalf("prep records = %d", got)
	}
	if got := len(c.Select(Query{From: 2 * time.Second, Until: 41 * time.Second})); got != 3 {
		t.Fatalf("windowed = %d", got)
	}
	if got := len(c.Select(Query{Kind: KindError, Function: "train"})); got != 1 {
		t.Fatalf("errors = %d", got)
	}
}

func TestDurations(t *testing.T) {
	c := seeded()
	ds := c.Durations(Query{Kind: KindInvocation, Function: "prep"})
	if len(ds) != 2 || ds[0] != 100*time.Millisecond {
		t.Fatalf("durations = %v", ds)
	}
}

func TestSummarize(t *testing.T) {
	c := seeded()
	sums := c.Summarize(Query{Kind: KindInvocation})
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].Function != "prep" || sums[0].Count != 2 || sums[0].Max != 120*time.Millisecond {
		t.Fatalf("prep summary = %+v", sums[0])
	}
	if sums[1].Function != "train" || sums[1].Total != 30*time.Second {
		t.Fatalf("train summary = %+v", sums[1])
	}
}

func TestRetentionCap(t *testing.T) {
	c := NewCollector("capped")
	c.Cap = 3
	for i := 0; i < 10; i++ {
		c.Invocation(time.Duration(i)*time.Second, "f", time.Millisecond)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	recs := c.Select(Query{})
	if recs[0].At != 7*time.Second {
		t.Fatalf("oldest retained = %v, want 7s", recs[0].At)
	}
}

func TestDump(t *testing.T) {
	c := seeded()
	out := c.Dump(Query{Function: "train"})
	if !strings.Contains(out, "train") || !strings.Contains(out, "boom") {
		t.Fatalf("dump:\n%s", out)
	}
	if strings.Contains(out, "prep") {
		t.Fatal("dump leaked filtered records")
	}
}

func TestBoundedUntilZero(t *testing.T) {
	c := NewCollector("zero")
	c.Invocation(0, "boot", time.Millisecond)
	c.Invocation(time.Second, "boot", time.Millisecond)

	// Legacy convention: Until 0 means unbounded.
	if got := len(c.Select(Query{Until: 0})); got != 2 {
		t.Fatalf("legacy Until:0 = %d, want 2 (unbounded)", got)
	}
	// Bounded makes the [0, 0] window expressible.
	if got := len(c.Select(Query{Until: 0, Bounded: true})); got != 1 {
		t.Fatalf("bounded [0,0] = %d, want 1", got)
	}
	if got := c.Count(Query{Until: 0, Bounded: true}); got != 1 {
		t.Fatalf("Count bounded [0,0] = %d, want 1", got)
	}
	// Bounded with a positive Until behaves like before.
	if got := len(c.Select(Query{Until: time.Second, Bounded: true})); got != 2 {
		t.Fatalf("bounded [0,1s] = %d, want 2", got)
	}
}

func TestCountMatchesSelect(t *testing.T) {
	c := seeded()
	queries := []Query{
		{},
		{Kind: KindInvocation},
		{Function: "prep"},
		{From: 2 * time.Second, Until: 41 * time.Second},
		{Kind: KindError, Function: "train"},
		{From: 100 * time.Second},
		{Until: 0, Bounded: true},
	}
	for _, q := range queries {
		if got, want := c.Count(q), len(c.Select(q)); got != want {
			t.Fatalf("Count(%+v) = %d, Select len = %d", q, got, want)
		}
	}
}

// TestWindowScanBounds drives the binary-search fast path across every
// window alignment and cross-checks it against a naive filter.
func TestWindowScanBounds(t *testing.T) {
	c := NewCollector("sorted")
	for i := 0; i < 50; i++ {
		c.Invocation(time.Duration(i)*time.Second, "f", time.Millisecond)
	}
	naive := func(from, until sim.Time) int {
		n := 0
		for i := 0; i < 50; i++ {
			at := time.Duration(i) * time.Second
			if at >= from && at <= until {
				n++
			}
		}
		return n
	}
	for from := time.Duration(0); from <= 52*time.Second; from += 7 * time.Second / 2 {
		for until := from; until <= 52*time.Second; until += 5 * time.Second / 2 {
			q := Query{From: from, Until: until, Bounded: true}
			if got, want := c.Count(q), naive(from, until); got != want {
				t.Fatalf("window [%v,%v]: got %d want %d", from, until, got, want)
			}
		}
	}
}

// TestUnsortedFallback checks that out-of-order emission is detected
// and window queries stay correct via the full-scan path.
func TestUnsortedFallback(t *testing.T) {
	c := NewCollector("unsorted")
	c.Invocation(10*time.Second, "f", time.Millisecond)
	c.Invocation(2*time.Second, "f", time.Millisecond) // out of order
	c.Invocation(20*time.Second, "f", time.Millisecond)
	if got := c.Count(Query{From: time.Second, Until: 5 * time.Second}); got != 1 {
		t.Fatalf("unsorted window count = %d, want 1", got)
	}
	if got := c.Count(Query{From: 5 * time.Second}); got != 2 {
		t.Fatalf("unsorted From-only count = %d, want 2", got)
	}
	recs := c.Select(Query{From: time.Second, Until: 30 * time.Second})
	if len(recs) != 3 || recs[0].At != 10*time.Second {
		t.Fatalf("unsorted select preserved order? %v", recs)
	}
}
