package trace_test

import (
	"testing"
	"time"

	"statebench/internal/aws/lambda"
	"statebench/internal/azure/functions"
	"statebench/internal/platform"
	"statebench/internal/sim"
	"statebench/internal/trace"
)

func TestLambdaEmitsCloudWatchStyleRecords(t *testing.T) {
	k := sim.NewKernel(1)
	svc := lambda.New(k, platform.DefaultAWS())
	svc.Logs = trace.NewCollector("aws")
	svc.MustRegister(lambda.Config{Name: "f", MemoryMB: 128, Handler: func(ctx *lambda.Context, p []byte) ([]byte, error) {
		ctx.Busy(time.Second)
		return p, nil
	}})
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if _, err := svc.Invoke(p, "f", nil); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}
	})
	k.Run()
	inv := svc.Logs.Select(trace.Query{Kind: trace.KindInvocation})
	if len(inv) != 3 {
		t.Fatalf("invocation records = %d", len(inv))
	}
	cold := svc.Logs.Select(trace.Query{Kind: trace.KindColdStart})
	if len(cold) != 1 {
		t.Fatalf("cold-start records = %d, want 1 (first invoke)", len(cold))
	}
	sums := svc.Logs.Summarize(trace.Query{Kind: trace.KindInvocation})
	if len(sums) != 1 || sums[0].Count != 3 {
		t.Fatalf("summary = %+v", sums)
	}
}

func TestAzureHostEmitsAppInsightsStyleRecords(t *testing.T) {
	k := sim.NewKernel(1)
	host := functions.NewHost(k, "app", platform.DefaultAzure())
	host.Logs = trace.NewCollector("azure")
	host.MustRegister(functions.Config{Name: "f", Handler: func(ctx *functions.Context, p []byte) ([]byte, error) {
		ctx.Busy(500 * time.Millisecond)
		return p, nil
	}})
	k.Spawn("client", func(p *sim.Proc) {
		defer host.Stop()
		for i := 0; i < 2; i++ {
			if _, err := host.InvokeHTTP(p, "f", nil); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}
	})
	k.Run()
	if got := len(host.Logs.Select(trace.Query{Kind: trace.KindInvocation})); got != 2 {
		t.Fatalf("invocation records = %d", got)
	}
	if got := len(host.Logs.Select(trace.Query{Kind: trace.KindColdStart})); got != 1 {
		t.Fatalf("cold-start records = %d", got)
	}
}
