// Package trace is the simulation's CloudWatch / Application Insights
// analogue: an append-only collector of structured invocation records
// that the paper's methodology reads results from ("we often relied on
// AWS CloudWatch and Azure Application Insight to collect the
// results"). Hosts emit a record per function execution; queries
// filter by function, kind, and virtual-time window.
package trace

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"statebench/internal/sim"
)

// Kind classifies a record.
type Kind string

// Record kinds.
const (
	KindInvocation Kind = "invocation"
	KindColdStart  Kind = "coldstart"
	KindError      Kind = "error"
	KindCustom     Kind = "custom"
)

// Record is one structured log entry.
type Record struct {
	At       sim.Time
	Kind     Kind
	Function string
	// Duration is the execution time for invocation records.
	Duration time.Duration
	// Detail is free-form context (error text, custom payloads).
	Detail string
}

// String renders the record as a log line.
func (r Record) String() string {
	return fmt.Sprintf("%-12v %-10s %-24s %-10v %s", r.At, r.Kind, r.Function, r.Duration, r.Detail)
}

// Collector accumulates records in arrival order.
type Collector struct {
	name    string
	records []Record
	// Cap bounds retention (0 = unlimited); the oldest records are
	// dropped first, like a log group retention policy.
	Cap int

	// maxAt/unsorted track whether records arrived in nondecreasing
	// time order. Simulation hosts emit in kernel execution order, so
	// the common case stays sorted and window queries can binary-search;
	// an out-of-order Emit flips unsorted and queries fall back to a
	// full scan.
	maxAt    sim.Time
	unsorted bool
}

// NewCollector returns an empty collector named name.
func NewCollector(name string) *Collector { return &Collector{name: name} }

// Name returns the collector (log group) name.
func (c *Collector) Name() string { return c.name }

// Len returns the number of retained records.
func (c *Collector) Len() int { return len(c.records) }

// Emit appends a record, enforcing the retention cap.
func (c *Collector) Emit(r Record) {
	if r.At < c.maxAt {
		c.unsorted = true
	} else {
		c.maxAt = r.At
	}
	c.records = append(c.records, r)
	if c.Cap > 0 && len(c.records) > c.Cap {
		c.records = c.records[len(c.records)-c.Cap:]
	}
}

// Invocation logs one execution.
func (c *Collector) Invocation(at sim.Time, fn string, d time.Duration) {
	c.Emit(Record{At: at, Kind: KindInvocation, Function: fn, Duration: d})
}

// ColdStart logs one cold start.
func (c *Collector) ColdStart(at sim.Time, fn string, d time.Duration) {
	c.Emit(Record{At: at, Kind: KindColdStart, Function: fn, Duration: d})
}

// Error logs a failed execution.
func (c *Collector) Error(at sim.Time, fn, detail string) {
	c.Emit(Record{At: at, Kind: KindError, Function: fn, Detail: detail})
}

// Query filters retained records. Zero-valued fields match everything.
//
// The time window is [From, Until]. Historically Until == 0 meant "no
// upper bound", which made the legitimate window [0, 0] inexpressible
// — a query for records at virtual time zero silently matched the whole
// log. Set Bounded to make Until an inclusive upper bound even when it
// is zero; with Bounded unset the legacy convention (Until <= 0 means
// unbounded) still applies.
type Query struct {
	Kind     Kind
	Function string
	From     sim.Time
	Until    sim.Time
	// Bounded forces Until to act as an upper bound regardless of its
	// value (fixing the Until: 0 ambiguity).
	Bounded bool
}

// bounded reports whether q has an upper bound, and returns it.
func (q Query) bounded() (sim.Time, bool) {
	if q.Bounded {
		return q.Until, true
	}
	if q.Until > 0 {
		return q.Until, true
	}
	return 0, false
}

// match reports whether r passes q's kind/function filters (the time
// window is handled by forEach's scan bounds).
func (q Query) match(r Record) bool {
	if q.Kind != "" && r.Kind != q.Kind {
		return false
	}
	if q.Function != "" && r.Function != q.Function {
		return false
	}
	return true
}

// forEach visits the records matching q in arrival order without
// materializing a slice. When records arrived in time order, the
// window's start index is found by binary search and the scan stops at
// the first record past the upper bound; otherwise it degrades to a
// filtered full scan.
func (c *Collector) forEach(q Query, fn func(r Record)) {
	until, hasUntil := q.bounded()
	recs := c.records
	if !c.unsorted && q.From > 0 {
		i, _ := slices.BinarySearchFunc(recs, q.From, func(r Record, t sim.Time) int {
			if r.At < t {
				return -1
			}
			return 1 // never report equality: lands on the first At >= t
		})
		recs = recs[i:]
	}
	for _, r := range recs {
		if r.At < q.From {
			continue // only reachable on the unsorted path
		}
		if hasUntil && r.At > until {
			if c.unsorted {
				continue
			}
			break // sorted: nothing later can re-enter the window
		}
		if q.match(r) {
			fn(r)
		}
	}
}

// Select returns the records matching q, in arrival order.
func (c *Collector) Select(q Query) []Record {
	var out []Record
	c.forEach(q, func(r Record) { out = append(out, r) })
	return out
}

// Count returns the number of records matching q without materializing
// them.
func (c *Collector) Count(q Query) int {
	n := 0
	c.forEach(q, func(Record) { n++ })
	return n
}

// Durations extracts the Duration field of the matching records.
func (c *Collector) Durations(q Query) []time.Duration {
	out := make([]time.Duration, 0, c.Count(q))
	c.forEach(q, func(r Record) { out = append(out, r.Duration) })
	return out
}

// Summary aggregates matching invocation records per function:
// count, total and max duration — the per-function view a CloudWatch
// dashboard gives.
type Summary struct {
	Function string
	Count    int
	Total    time.Duration
	Max      time.Duration
}

// Summarize groups matching records by function, sorted by name. It
// aggregates through forEach, so no intermediate record slice is built
// even over large windows.
func (c *Collector) Summarize(q Query) []Summary {
	byFn := map[string]*Summary{}
	c.forEach(q, func(r Record) {
		s := byFn[r.Function]
		if s == nil {
			s = &Summary{Function: r.Function}
			byFn[r.Function] = s
		}
		s.Count++
		s.Total += r.Duration
		if r.Duration > s.Max {
			s.Max = r.Duration
		}
	})
	out := make([]Summary, 0, len(byFn))
	for _, s := range byFn {
		out = append(out, *s)
	}
	slices.SortFunc(out, func(a, b Summary) int { return strings.Compare(a.Function, b.Function) })
	return out
}

// Dump renders the matching records as log text.
func (c *Collector) Dump(q Query) string {
	var sb strings.Builder
	c.forEach(q, func(r Record) {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	})
	return sb.String()
}
