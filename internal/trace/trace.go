// Package trace is the simulation's CloudWatch / Application Insights
// analogue: an append-only collector of structured invocation records
// that the paper's methodology reads results from ("we often relied on
// AWS CloudWatch and Azure Application Insight to collect the
// results"). Hosts emit a record per function execution; queries
// filter by function, kind, and virtual-time window.
package trace

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"statebench/internal/sim"
)

// Kind classifies a record.
type Kind string

// Record kinds.
const (
	KindInvocation Kind = "invocation"
	KindColdStart  Kind = "coldstart"
	KindError      Kind = "error"
	KindCustom     Kind = "custom"
)

// Record is one structured log entry.
type Record struct {
	At       sim.Time
	Kind     Kind
	Function string
	// Duration is the execution time for invocation records.
	Duration time.Duration
	// Detail is free-form context (error text, custom payloads).
	Detail string
}

// String renders the record as a log line.
func (r Record) String() string {
	return fmt.Sprintf("%-12v %-10s %-24s %-10v %s", r.At, r.Kind, r.Function, r.Duration, r.Detail)
}

// Collector accumulates records in arrival order.
type Collector struct {
	name    string
	records []Record
	// Cap bounds retention (0 = unlimited); the oldest records are
	// dropped first, like a log group retention policy.
	Cap int
}

// NewCollector returns an empty collector named name.
func NewCollector(name string) *Collector { return &Collector{name: name} }

// Name returns the collector (log group) name.
func (c *Collector) Name() string { return c.name }

// Len returns the number of retained records.
func (c *Collector) Len() int { return len(c.records) }

// Emit appends a record, enforcing the retention cap.
func (c *Collector) Emit(r Record) {
	c.records = append(c.records, r)
	if c.Cap > 0 && len(c.records) > c.Cap {
		c.records = c.records[len(c.records)-c.Cap:]
	}
}

// Invocation logs one execution.
func (c *Collector) Invocation(at sim.Time, fn string, d time.Duration) {
	c.Emit(Record{At: at, Kind: KindInvocation, Function: fn, Duration: d})
}

// ColdStart logs one cold start.
func (c *Collector) ColdStart(at sim.Time, fn string, d time.Duration) {
	c.Emit(Record{At: at, Kind: KindColdStart, Function: fn, Duration: d})
}

// Error logs a failed execution.
func (c *Collector) Error(at sim.Time, fn, detail string) {
	c.Emit(Record{At: at, Kind: KindError, Function: fn, Detail: detail})
}

// Query filters retained records. Zero-valued fields match everything;
// Until <= 0 means no upper bound.
type Query struct {
	Kind     Kind
	Function string
	From     sim.Time
	Until    sim.Time
}

// Select returns the records matching q, in arrival order.
func (c *Collector) Select(q Query) []Record {
	var out []Record
	for _, r := range c.records {
		if q.Kind != "" && r.Kind != q.Kind {
			continue
		}
		if q.Function != "" && r.Function != q.Function {
			continue
		}
		if r.At < q.From {
			continue
		}
		if q.Until > 0 && r.At > q.Until {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Durations extracts the Duration field of the matching records.
func (c *Collector) Durations(q Query) []time.Duration {
	recs := c.Select(q)
	out := make([]time.Duration, len(recs))
	for i, r := range recs {
		out[i] = r.Duration
	}
	return out
}

// Summary aggregates matching invocation records per function:
// count, total and max duration — the per-function view a CloudWatch
// dashboard gives.
type Summary struct {
	Function string
	Count    int
	Total    time.Duration
	Max      time.Duration
}

// Summarize groups matching records by function, sorted by name.
func (c *Collector) Summarize(q Query) []Summary {
	byFn := map[string]*Summary{}
	for _, r := range c.Select(q) {
		s := byFn[r.Function]
		if s == nil {
			s = &Summary{Function: r.Function}
			byFn[r.Function] = s
		}
		s.Count++
		s.Total += r.Duration
		if r.Duration > s.Max {
			s.Max = r.Duration
		}
	}
	out := make([]Summary, 0, len(byFn))
	for _, s := range byFn {
		out = append(out, *s)
	}
	slices.SortFunc(out, func(a, b Summary) int { return strings.Compare(a.Function, b.Function) })
	return out
}

// Dump renders the matching records as log text.
func (c *Collector) Dump(q Query) string {
	var sb strings.Builder
	for _, r := range c.Select(q) {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
