package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func sampleMany(d Dist, n int, seed uint64) []time.Duration {
	r := NewRNG(seed)
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d.Sample(r)
	}
	return out
}

func TestFixedDist(t *testing.T) {
	d := Fixed{D: 3 * time.Second}
	for _, s := range sampleMany(d, 10, 1) {
		if s != 3*time.Second {
			t.Fatalf("fixed sample = %v", s)
		}
	}
	if d.Mean() != 3*time.Second {
		t.Fatal("fixed mean")
	}
}

func TestUniformDistBounds(t *testing.T) {
	d := UniformDist{Lo: time.Second, Hi: 2 * time.Second}
	for _, s := range sampleMany(d, 1000, 7) {
		if s < time.Second || s > 2*time.Second {
			t.Fatalf("uniform sample %v out of bounds", s)
		}
	}
}

func TestExpDistMean(t *testing.T) {
	d := ExpDist{Base: 100 * time.Millisecond, M: time.Second}
	samples := sampleMany(d, 20000, 3)
	var sum float64
	for _, s := range samples {
		sum += float64(s)
	}
	mean := time.Duration(sum / float64(len(samples)))
	want := d.Mean()
	if math.Abs(float64(mean-want)) > 0.05*float64(want) {
		t.Fatalf("empirical mean %v, want ~%v", mean, want)
	}
}

func TestLogNormalMedianAndCap(t *testing.T) {
	d := LogNormalDist{Median: time.Second, Sigma: 0.5, Max: 10 * time.Second}
	samples := sampleMany(d, 20001, 5)
	med := Quantile(samples, 0.5)
	if med < 900*time.Millisecond || med > 1100*time.Millisecond {
		t.Fatalf("median %v, want ~1s", med)
	}
	for _, s := range samples {
		if s > 10*time.Second {
			t.Fatalf("sample %v exceeds cap", s)
		}
	}
}

func TestParetoTailHeavierThanExp(t *testing.T) {
	p := ParetoDist{Scale: time.Second, Alpha: 1.2}
	samples := sampleMany(p, 20000, 9)
	p50 := Quantile(samples, 0.5)
	p99 := Quantile(samples, 0.99)
	if float64(p99)/float64(p50) < 5 {
		t.Fatalf("pareto p99/p50 = %.1f, want heavy tail", float64(p99)/float64(p50))
	}
	for _, s := range samples {
		if s < time.Second {
			t.Fatalf("pareto sample %v below scale", s)
		}
	}
}

func TestParetoMean(t *testing.T) {
	p := ParetoDist{Scale: time.Second, Alpha: 2}
	if p.Mean() != 2*time.Second {
		t.Fatalf("pareto mean = %v, want 2s", p.Mean())
	}
	inf := ParetoDist{Scale: time.Second, Alpha: 0.9}
	if inf.Mean() != time.Duration(math.MaxInt64) {
		t.Fatal("alpha<=1 uncapped mean should be MaxInt64")
	}
}

func TestEmpiricalSamplesFromObservations(t *testing.T) {
	obs := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	d := Empirical{Obs: obs}
	seen := map[time.Duration]bool{}
	for _, s := range sampleMany(d, 300, 11) {
		seen[s] = true
		if s != time.Second && s != 2*time.Second && s != 3*time.Second {
			t.Fatalf("sample %v not in observation set", s)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("only saw %d distinct values", len(seen))
	}
	if d.Mean() != 2*time.Second {
		t.Fatalf("empirical mean = %v", d.Mean())
	}
}

func TestEmpiricalEmpty(t *testing.T) {
	d := Empirical{}
	if d.Sample(NewRNG(1)) != 0 || d.Mean() != 0 {
		t.Fatal("empty empirical should be zero")
	}
}

func TestMixtureWeights(t *testing.T) {
	m := Mixture{
		Weights: []float64{0.9, 0.1},
		Parts:   []Dist{Fixed{D: time.Second}, Fixed{D: 100 * time.Second}},
	}
	samples := sampleMany(m, 10000, 13)
	slow := 0
	for _, s := range samples {
		if s == 100*time.Second {
			slow++
		}
	}
	frac := float64(slow) / float64(len(samples))
	if frac < 0.07 || frac > 0.13 {
		t.Fatalf("slow fraction %.3f, want ~0.1", frac)
	}
	wantMean := time.Duration(0.9*float64(time.Second) + 0.1*float64(100*time.Second))
	if m.Mean() != wantMean {
		t.Fatalf("mixture mean = %v, want %v", m.Mean(), wantMean)
	}
}

func TestQuantile(t *testing.T) {
	s := []time.Duration{4, 1, 3, 2, 5}
	if Quantile(s, 0) != 1 || Quantile(s, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if Quantile(s, 0.5) != 3 {
		t.Fatalf("median = %v", Quantile(s, 0.5))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Input must not be mutated.
	if s[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

// Property: no distribution ever produces a negative duration.
func TestPropertyNonNegativeSamples(t *testing.T) {
	dists := []Dist{
		Fixed{D: time.Second},
		UniformDist{Lo: 0, Hi: time.Minute},
		ExpDist{M: time.Second},
		LogNormalDist{Median: time.Second, Sigma: 2},
		ParetoDist{Scale: time.Millisecond, Alpha: 0.5, Max: time.Hour},
		Mixture{Weights: []float64{1, 1}, Parts: []Dist{ExpDist{M: time.Second}, Fixed{}}},
	}
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for _, d := range dists {
			for i := 0; i < 20; i++ {
				if d.Sample(r) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RNG Float64 is always in [0,1) and Intn in range.
func TestPropertyRNGRanges(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := NewRNG(seed)
		n := int(nRaw%100) + 1
		for i := 0; i < 50; i++ {
			u := r.Float64()
			if u < 0 || u >= 1 {
				return false
			}
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Perm returns a valid permutation.
func TestPropertyPerm(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
