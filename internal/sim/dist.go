package sim

import (
	"fmt"
	"math"
	"slices"
	"time"
)

// Dist is a duration distribution that can be sampled with an RNG.
// Distributions are immutable descriptions; sampling is side-effect-free
// except for advancing the RNG stream.
type Dist interface {
	// Sample draws one duration. Implementations must never return a
	// negative duration.
	Sample(r *RNG) time.Duration
	// Mean returns the distribution's expected value (approximate for
	// truncated forms).
	Mean() time.Duration
	fmt.Stringer
}

func clampDur(f float64) time.Duration {
	if f < 0 || math.IsNaN(f) {
		return 0
	}
	if f > float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(f)
}

// Fixed is a degenerate distribution that always returns D.
type Fixed struct{ D time.Duration }

func (f Fixed) Sample(*RNG) time.Duration { return f.D }
func (f Fixed) Mean() time.Duration       { return f.D }
func (f Fixed) String() string            { return fmt.Sprintf("fixed(%v)", f.D) }

// UniformDist samples uniformly in [Lo, Hi].
type UniformDist struct{ Lo, Hi time.Duration }

func (u UniformDist) Sample(r *RNG) time.Duration {
	return clampDur(r.Uniform(float64(u.Lo), float64(u.Hi)))
}
func (u UniformDist) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }
func (u UniformDist) String() string      { return fmt.Sprintf("uniform(%v,%v)", u.Lo, u.Hi) }

// ExpDist is exponential with the given mean, shifted by Base.
type ExpDist struct {
	Base time.Duration
	M    time.Duration
}

func (e ExpDist) Sample(r *RNG) time.Duration {
	return e.Base + clampDur(r.Exp(float64(e.M)))
}
func (e ExpDist) Mean() time.Duration { return e.Base + e.M }
func (e ExpDist) String() string      { return fmt.Sprintf("exp(base=%v,mean=%v)", e.Base, e.M) }

// LogNormalDist is a lognormal parameterized by its median and the sigma
// of the underlying normal (sigma controls tail weight), optionally
// truncated at Max (0 = no cap).
type LogNormalDist struct {
	Median time.Duration
	Sigma  float64
	Max    time.Duration
}

func (l LogNormalDist) Sample(r *RNG) time.Duration {
	mu := math.Log(float64(l.Median))
	d := clampDur(r.LogNormal(mu, l.Sigma))
	if l.Max > 0 && d > l.Max {
		d = l.Max
	}
	return d
}

func (l LogNormalDist) Mean() time.Duration {
	mu := math.Log(float64(l.Median))
	return clampDur(math.Exp(mu + l.Sigma*l.Sigma/2))
}
func (l LogNormalDist) String() string {
	return fmt.Sprintf("lognormal(median=%v,sigma=%.2f)", l.Median, l.Sigma)
}

// ParetoDist is a heavy-tailed Pareto with minimum Scale and shape
// Alpha, optionally truncated at Max (0 = no cap).
type ParetoDist struct {
	Scale time.Duration
	Alpha float64
	Max   time.Duration
}

func (p ParetoDist) Sample(r *RNG) time.Duration {
	d := clampDur(r.Pareto(float64(p.Scale), p.Alpha))
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	return d
}

func (p ParetoDist) Mean() time.Duration {
	if p.Alpha <= 1 {
		if p.Max > 0 {
			return p.Max
		}
		return time.Duration(math.MaxInt64)
	}
	return clampDur(p.Alpha * float64(p.Scale) / (p.Alpha - 1))
}
func (p ParetoDist) String() string {
	return fmt.Sprintf("pareto(scale=%v,alpha=%.2f)", p.Scale, p.Alpha)
}

// Empirical samples uniformly from a fixed set of observed durations;
// it reproduces an arbitrary measured distribution.
type Empirical struct{ Obs []time.Duration }

func (e Empirical) Sample(r *RNG) time.Duration {
	if len(e.Obs) == 0 {
		return 0
	}
	return e.Obs[r.Intn(len(e.Obs))]
}

func (e Empirical) Mean() time.Duration {
	if len(e.Obs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range e.Obs {
		sum += d
	}
	return sum / time.Duration(len(e.Obs))
}
func (e Empirical) String() string { return fmt.Sprintf("empirical(n=%d)", len(e.Obs)) }

// Mixture samples from one of several component distributions with the
// given weights (weights need not sum to 1; they are normalized).
// It models bimodal behavior such as warm-vs-cold paths.
type Mixture struct {
	Weights []float64
	Parts   []Dist
}

func (m Mixture) Sample(r *RNG) time.Duration {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range m.Weights {
		if x < w || i == len(m.Weights)-1 {
			return m.Parts[i].Sample(r)
		}
		x -= w
	}
	return 0
}

func (m Mixture) Mean() time.Duration {
	total := 0.0
	acc := 0.0
	for i, w := range m.Weights {
		total += w
		acc += w * float64(m.Parts[i].Mean())
	}
	if total == 0 {
		return 0
	}
	return clampDur(acc / total)
}
func (m Mixture) String() string { return fmt.Sprintf("mixture(%d parts)", len(m.Parts)) }

// Quantile returns the q-quantile (0..1) of a sample set by sorting a
// copy; it is a convenience for calibration tests.
func Quantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	cp := make([]time.Duration, len(samples))
	copy(cp, samples)
	slices.Sort(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	idx := q * float64(len(cp)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return cp[lo]
	}
	frac := idx - float64(lo)
	return cp[lo] + time.Duration(frac*float64(cp[hi]-cp[lo]))
}
