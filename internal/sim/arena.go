package sim

// Arena is a chunked, free-list-backed record pool for simulation
// state that churns at event rate — invocation records, in-flight
// work items. Records are addressed by stable int32 handles (chunk
// storage never moves), so schedulable state can reference a record
// without holding a pointer, and — crucially for the event hot path —
// a record can embed a closure allocated once, at first use of its
// slot, that captures the handle and survives Free/Alloc recycling.
// Steady-state allocation cost is therefore bounded by the peak number
// of live records, not the total processed.
//
// An Arena belongs to one kernel's goroutine like everything else in
// this package; it does not lock.
type Arena[T any] struct {
	chunks [][]T
	free   []int32
	next   int32 // first never-used handle
	inUse  int
}

const (
	arenaChunkBits = 10
	arenaChunkSize = 1 << arenaChunkBits
	arenaChunkMask = arenaChunkSize - 1
)

// Alloc returns a handle and pointer to a record. The record's fields
// are whatever the previous user of the slot left behind — callers
// reset what they use. That is deliberate: zeroing would also wipe the
// slot-lifetime closures the traffic engine stores in its records.
func (a *Arena[T]) Alloc() (int32, *T) {
	if n := len(a.free); n > 0 {
		h := a.free[n-1]
		a.free = a.free[:n-1]
		a.inUse++
		return h, a.At(h)
	}
	h := a.next
	a.next++
	if int(h>>arenaChunkBits) == len(a.chunks) {
		a.chunks = append(a.chunks, make([]T, arenaChunkSize))
	}
	a.inUse++
	return h, &a.chunks[h>>arenaChunkBits][h&arenaChunkMask]
}

// At returns the record for a handle obtained from Alloc. The pointer
// is stable for the life of the arena.
func (a *Arena[T]) At(h int32) *T {
	return &a.chunks[h>>arenaChunkBits][h&arenaChunkMask]
}

// Free returns a record's slot to the pool. The record is not zeroed
// (see Alloc); the handle must not be used again until Alloc hands it
// back out.
func (a *Arena[T]) Free(h int32) {
	a.free = append(a.free, h)
	a.inUse--
}

// InUse returns the number of live records.
func (a *Arena[T]) InUse() int { return a.inUse }

// Cap returns the number of slots ever allocated — the high-water mark
// of live records, and the arena's resident footprint in records.
func (a *Arena[T]) Cap() int { return len(a.chunks) * arenaChunkSize }
