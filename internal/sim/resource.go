package sim

// Resource is a counted semaphore with FIFO waiters, used to model
// capacity-limited facilities (container slots, concurrency caps).
type Resource struct {
	k        *Kernel
	capacity int
	inUse    int
	waiters  []*Proc
}

// NewResource returns a resource with the given capacity. Capacity must
// be positive.
func NewResource(k *Kernel, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: NewResource capacity must be positive")
	}
	return &Resource{k: k, capacity: capacity}
}

// Capacity returns the total number of slots.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently held slots.
func (r *Resource) InUse() int { return r.inUse }

// Available returns the number of free slots.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// Waiting returns the number of queued acquirers.
func (r *Resource) Waiting() int { return len(r.waiters) }

// SetCapacity grows or shrinks the resource. Growing wakes waiters;
// shrinking below inUse lets current holders finish (capacity is
// enforced on future acquisitions).
func (r *Resource) SetCapacity(n int) {
	if n <= 0 {
		panic("sim: SetCapacity must be positive")
	}
	r.capacity = n
	r.dispatch()
}

// Acquire blocks the calling process until a slot is free, then holds it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
}

// TryAcquire takes a slot if one is free without blocking.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return true
	}
	return false
}

// Release frees a slot and wakes the oldest waiter, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire")
	}
	r.inUse--
	r.dispatch()
}

// dispatch hands free slots to queued waiters in FIFO order.
func (r *Resource) dispatch() {
	for len(r.waiters) > 0 && r.inUse < r.capacity {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.inUse++
		w.wake(0)
	}
}

// Store is an unbounded FIFO of items with blocking Get, used to model
// message channels inside the simulation (not billed; see cloud/queue
// for the billed storage-queue model).
type Store[T any] struct {
	k       *Kernel
	items   []T
	waiters []*Proc
}

// NewStore returns an empty store bound to k.
func NewStore[T any](k *Kernel) *Store[T] {
	return &Store[T]{k: k}
}

// Len returns the number of queued items.
func (s *Store[T]) Len() int { return len(s.items) }

// Put appends an item and wakes the oldest waiting getter, if any.
// Safe from kernel or process context.
func (s *Store[T]) Put(v T) {
	s.items = append(s.items, v)
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.wake(0)
	}
}

// Get blocks the calling process until an item is available and removes
// it. Items are delivered in FIFO order; competing getters are served in
// arrival order.
func (s *Store[T]) Get(p *Proc) T {
	for len(s.items) == 0 {
		s.waiters = append(s.waiters, p)
		p.park()
	}
	v := s.items[0]
	s.items = s.items[1:]
	return v
}

// TryGet removes and returns the head item without blocking.
func (s *Store[T]) TryGet() (T, bool) {
	var zero T
	if len(s.items) == 0 {
		return zero, false
	}
	v := s.items[0]
	s.items = s.items[1:]
	return v, true
}
