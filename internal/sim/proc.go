package sim

import "fmt"

// TraceContext identifies the span a process is currently executing
// under, for observability instrumentation layered on top of the
// kernel (see internal/obs/span). The zero value means "untraced".
//
// It lives in package sim — rather than the span package — so that a
// Proc can carry it without the kernel depending on any observability
// code: the kernel never reads it.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Proc is a simulation process: a goroutine that runs in lockstep with
// the kernel's event loop. At most one process runs at a time; a process
// gives up control by calling a blocking operation (Sleep, Await, a
// resource acquire) and is resumed by a scheduled event.
//
// All Proc methods must be called from the process's own goroutine.
type Proc struct {
	k    *Kernel
	id   int64
	name string

	// TraceCtx is the ambient span context for instrumentation.
	// Services set it around handler invocations so nested operations
	// (queue hops, sub-spans) attach to the right parent; the kernel
	// itself ignores it. Zero when tracing is disabled.
	TraceCtx TraceContext

	resume chan struct{}
	dead   bool

	// unparkFn is unpark bound as a method value once at spawn, so that
	// pushUnpark — the Sleep/wake hot path, millions of events per
	// campaign — never allocates a closure per wake-up.
	unparkFn func()

	// awaitGen is the process's current timed-await generation. Each
	// Future.AwaitTimeout bumps it and tags both the timer event and
	// the future-completion entry with the new value; whichever fires
	// first while the generation still matches bumps it again, turning
	// the loser into a no-op. Closure-free timeout cancellation.
	awaitGen uint64

	// shard is the process's event-partition affinity, fixed at spawn:
	// every wake-up the process ever schedules lands in the same shard
	// heap, so a long-lived process's timer churn stays within one
	// backing array. Affinity is a layout choice only — execution order
	// is independent of it (see the kernel's sharding comment).
	shard uint32
}

// Spawn creates a process named name and schedules it to start at the
// current virtual time. fn runs on its own goroutine under the kernel's
// one-at-a-time discipline; when fn returns the process ends.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	k.procSeq++
	p := &Proc{k: k, id: k.procSeq, name: name, resume: make(chan struct{})}
	p.shard = uint32(mix64(uint64(p.id)))
	p.unparkFn = p.unpark
	k.live++
	k.After(0, func() {
		go func() {
			<-p.resume
			fn(p)
			p.dead = true
			k.live--
			k.yield <- struct{}{}
		}()
		p.step()
	})
	return p
}

// SpawnAfter is like Spawn but delays the start of the process by d.
func (k *Kernel) SpawnAfter(d Time, name string, fn func(p *Proc)) *Proc {
	k.procSeq++
	p := &Proc{k: k, id: k.procSeq, name: name, resume: make(chan struct{})}
	p.shard = uint32(mix64(uint64(p.id)))
	p.unparkFn = p.unpark
	k.live++
	k.After(d, func() {
		go func() {
			<-p.resume
			fn(p)
			p.dead = true
			k.live--
			k.yield <- struct{}{}
		}()
		p.step()
	})
	return p
}

// step transfers control to the process and blocks until it parks or
// exits. It must be called from kernel (event-loop) context.
func (p *Proc) step() {
	p.resume <- struct{}{}
	<-p.k.yield
}

// park suspends the process until something calls unpark on it. The
// caller must have already arranged for a wake-up; parking with no
// pending wake-up deadlocks the process (but not the kernel).
func (p *Proc) park() {
	p.k.yield <- struct{}{}
	<-p.resume
}

// unpark resumes a parked process. It must be called from kernel
// (event-loop) context, i.e. from inside a scheduled event callback.
func (p *Proc) unpark() {
	if p.dead {
		panic(fmt.Sprintf("sim: unpark of finished proc %q", p.name))
	}
	p.step()
}

// wake schedules the process to be resumed after d. Safe to call from
// either kernel or process context.
func (p *Proc) wake(d Time) {
	p.k.pushUnpark(d, p)
}

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns a unique (per kernel) process identifier.
func (p *Proc) ID() int64 { return p.id }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.Now() }

// Sleep suspends the process for d of virtual time. Non-positive d
// yields control for one scheduling round at the current instant.
func (p *Proc) Sleep(d Time) {
	p.wake(d)
	p.park()
}

// Yield gives other ready events/processes at the current instant a
// chance to run, then resumes.
func (p *Proc) Yield() { p.Sleep(0) }

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc#%d(%s)", p.id, p.name) }
