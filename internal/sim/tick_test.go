package sim

import (
	"testing"
	"time"
)

func TestTickListenerFiresAtBoundaries(t *testing.T) {
	k := NewKernel(1)
	var ticks []Time
	k.SetTickListener(time.Second, func(b Time) { ticks = append(ticks, b) })
	for i := 1; i <= 4; i++ {
		k.At(Time(i)*time.Second+100*time.Millisecond, func() {})
	}
	k.Run()
	want := []Time{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

// An idle gap coalesces: the listener hears only the last boundary at
// or before the clock, not every skipped window.
func TestTickListenerCoalescesIdleGaps(t *testing.T) {
	k := NewKernel(1)
	var ticks []Time
	k.SetTickListener(time.Second, func(b Time) { ticks = append(ticks, b) })
	k.At(500*time.Millisecond, func() {})
	k.At(10*time.Second, func() {}) // 9 boundaries skipped at once
	k.At(10500*time.Millisecond, func() {})
	k.Run()
	if len(ticks) != 1 || ticks[0] != 10*time.Second {
		t.Fatalf("ticks = %v, want [10s]", ticks)
	}
}

// The first tick fires at `every`, never at 0, and an event exactly on
// a boundary reports that boundary.
func TestTickListenerBoundaryExact(t *testing.T) {
	k := NewKernel(1)
	var ticks []Time
	k.SetTickListener(time.Second, func(b Time) { ticks = append(ticks, b) })
	k.At(0, func() {})
	k.At(time.Second, func() {})
	k.Run()
	if len(ticks) != 1 || ticks[0] != time.Second {
		t.Fatalf("ticks = %v, want [1s]", ticks)
	}
}

func TestTickListenerRemoval(t *testing.T) {
	k := NewKernel(1)
	n := 0
	k.SetTickListener(time.Second, func(Time) { n++ })
	k.SetTickListener(0, nil)
	k.At(5*time.Second, func() {})
	k.Run()
	if n != 0 {
		t.Fatalf("removed listener fired %d times", n)
	}
}

// The listener is passive: attaching one must not change event order,
// timestamps, or the executed count — the determinism contract that
// lets telemetry ride along without perturbing results.
func TestTickListenerDoesNotPerturbRun(t *testing.T) {
	run := func(listen bool) ([]int, uint64, Time) {
		k := NewKernelSharded(42, 4)
		if listen {
			k.SetTickListener(time.Second, func(Time) {})
		}
		var order []int
		r := NewRNG(42)
		for i := 0; i < 200; i++ {
			i := i
			k.At(Time(r.Intn(int(30*time.Second))), func() { order = append(order, i) })
		}
		end := k.Run()
		return order, k.Executed(), end
	}
	base, baseExec, baseEnd := run(false)
	got, gotExec, gotEnd := run(true)
	if gotExec != baseExec || gotEnd != baseEnd {
		t.Fatalf("executed/end diverged: %d/%v vs %d/%v", gotExec, gotEnd, baseExec, baseEnd)
	}
	for i := range base {
		if got[i] != base[i] {
			t.Fatalf("event order diverged at %d", i)
		}
	}
}

// Installing the listener mid-run (clock already past several
// boundaries) starts at the next boundary after now.
func TestTickListenerMidRunInstall(t *testing.T) {
	k := NewKernel(1)
	var ticks []Time
	k.At(5500*time.Millisecond, func() {
		k.SetTickListener(time.Second, func(b Time) { ticks = append(ticks, b) })
	})
	k.At(5700*time.Millisecond, func() {}) // before the next boundary
	k.At(6200*time.Millisecond, func() {})
	k.Run()
	if len(ticks) != 1 || ticks[0] != 6*time.Second {
		t.Fatalf("ticks = %v, want [6s]", ticks)
	}
}
