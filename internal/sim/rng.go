package sim

import "math"

// RNG is a small, fast, deterministic random stream (splitmix64 core).
// Each simulated component derives its own named stream from the kernel
// seed so adding randomness to one component never perturbs another.
type RNG struct {
	state uint64
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Stream derives a named RNG stream from the kernel's master seed.
// The same (seed, name) pair always yields the same stream.
func (k *Kernel) Stream(name string) *RNG {
	// FNV-1a over the name, mixed with the master seed.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return NewRNG(mix64(h ^ k.seed))
}

// mix64 is the splitmix64 finalizer, a strong 64-bit mixer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normal variate (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(N(mu, sigma)); mu/sigma are the parameters of
// the underlying normal, not the resulting mean.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto variate with the given scale (minimum) and
// shape alpha. Heavy-tailed for small alpha; used for tail-latency
// modeling.
func (r *RNG) Pareto(scale, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale / math.Pow(u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly reorders the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
