package sim

import "time"

// Future is a single-assignment result that processes can await.
// Complete may be called from kernel or process context; waiters are
// woken through scheduled events so the one-at-a-time discipline holds.
type Future[T any] struct {
	k       *Kernel
	done    bool
	val     T
	err     error
	waiters []*Proc
	cbs     []completion[T]
}

// completion is one registered completion action: a callback when fn
// is non-nil, otherwise a timed waiter (AwaitTimeout) to be woken
// through the kernel's conditional-unpark event — the closure-free
// path. The two live in one ordered list so completion order between
// callbacks and timed waiters is exactly registration order.
type completion[T any] struct {
	fn  func(T, error)
	p   *Proc
	gen uint64
}

// NewFuture returns an incomplete future bound to k.
func NewFuture[T any](k *Kernel) *Future[T] {
	return &Future[T]{k: k}
}

// Done reports whether the future has been completed.
func (f *Future[T]) Done() bool { return f.done }

// Value returns the completed value and error. It is only meaningful
// after Done reports true (or Await returns).
func (f *Future[T]) Value() (T, error) { return f.val, f.err }

// Complete resolves the future and wakes all waiters at the current
// virtual time. Completing twice panics: a future is single-assignment.
func (f *Future[T]) Complete(v T, err error) {
	if f.done {
		panic("sim: Future completed twice")
	}
	f.done = true
	f.val, f.err = v, err
	for _, w := range f.waiters {
		w.wake(0)
	}
	f.waiters = nil
	for _, c := range f.cbs {
		if c.fn != nil {
			cb := c.fn
			f.k.After(0, func() { cb(v, err) })
		} else {
			f.k.pushCondUnpark(0, c.p, c.gen)
		}
	}
	f.cbs = nil
}

// Fail is shorthand for completing with the zero value and err.
func (f *Future[T]) Fail(err error) {
	var zero T
	f.Complete(zero, err)
}

// Await blocks the calling process until the future completes, then
// returns its value and error.
func (f *Future[T]) Await(p *Proc) (T, error) {
	if !f.done {
		f.waiters = append(f.waiters, p)
		p.park()
	}
	return f.val, f.err
}

// AwaitTimeout is like Await but gives up after d, returning ok=false if
// the timeout fired first. The future remains awaitable afterwards.
func (f *Future[T]) AwaitTimeout(p *Proc, d time.Duration) (v T, err error, ok bool) {
	if f.done {
		return f.val, f.err, true
	}
	p.awaitGen++
	gen := p.awaitGen
	f.cbs = append(f.cbs, completion[T]{p: p, gen: gen})
	p.k.pushCondUnpark(d, p, gen)
	p.park()
	if f.done {
		return f.val, f.err, true
	}
	return v, nil, false
}

// OnComplete registers cb to run (as a scheduled event) when the future
// completes. If the future is already complete, cb is scheduled at the
// current time.
func (f *Future[T]) OnComplete(cb func(T, error)) {
	if f.done {
		v, err := f.val, f.err
		f.k.After(0, func() { cb(v, err) })
		return
	}
	f.cbs = append(f.cbs, completion[T]{fn: cb})
}

// CompletedFuture returns a future already resolved with v and err.
func CompletedFuture[T any](k *Kernel, v T, err error) *Future[T] {
	f := NewFuture[T](k)
	f.Complete(v, err)
	return f
}

// AwaitAll waits for every future in fs and returns their values in
// order. The first non-nil error (by slice position) is returned, but
// all futures are still awaited, mirroring fan-in semantics where the
// barrier waits for every branch.
func AwaitAll[T any](p *Proc, fs []*Future[T]) ([]T, error) {
	out := make([]T, len(fs))
	var firstErr error
	for i, f := range fs {
		v, err := f.Await(p)
		out[i] = v
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// AwaitAny waits until at least one future in fs completes and returns
// the index of the first completed future (lowest index wins ties).
func AwaitAny[T any](p *Proc, fs []*Future[T]) int {
	for i, f := range fs {
		if f.Done() {
			return i
		}
	}
	woken := false
	for _, f := range fs {
		f.OnComplete(func(T, error) {
			if !woken {
				woken = true
				p.wake(0)
			}
		})
	}
	p.park()
	for i, f := range fs {
		if f.Done() {
			return i
		}
	}
	panic("sim: AwaitAny woke with no completed future")
}
