package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.At(3*time.Second, func() { got = append(got, 3) })
	k.At(1*time.Second, func() { got = append(got, 1) })
	k.At(2*time.Second, func() { got = append(got, 2) })
	end := k.Run()
	if end != 3*time.Second {
		t.Fatalf("end time = %v, want 3s", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Second, func() { got = append(got, i) })
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	k := NewKernel(1)
	var at time.Duration
	k.At(5*time.Second, func() {
		k.At(time.Second, func() { at = k.Now() })
	})
	k.Run()
	if at != 5*time.Second {
		t.Fatalf("past event ran at %v, want clamped to 5s", at)
	}
}

func TestAfterNegativeClampsToZero(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.After(-time.Second, func() { ran = true })
	if k.Run() != 0 {
		t.Fatal("negative After should run at t=0")
	}
	if !ran {
		t.Fatal("event did not run")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		k.At(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(3 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events before deadline", fired)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want deadline 3s", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining event never ran")
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	if !k.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel(1)
	var marks []time.Duration
	k.Spawn("sleeper", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Sleep(10 * time.Second)
		marks = append(marks, p.Now())
		p.Sleep(5 * time.Second)
		marks = append(marks, p.Now())
	})
	k.Run()
	want := []time.Duration{0, 10 * time.Second, 15 * time.Second}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", k.LiveProcs())
	}
}

func TestSpawnAfter(t *testing.T) {
	k := NewKernel(1)
	var start time.Duration = -1
	k.SpawnAfter(7*time.Second, "late", func(p *Proc) { start = p.Now() })
	k.Run()
	if start != 7*time.Second {
		t.Fatalf("proc started at %v, want 7s", start)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel(42)
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					log = append(log, name)
					p.Sleep(time.Second)
				}
			})
		}
		k.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("nondeterministic length")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, first, again)
			}
		}
	}
	// Same-instant procs run in spawn order.
	if first[0] != "a" || first[1] != "b" || first[2] != "c" {
		t.Fatalf("spawn order not FIFO: %v", first)
	}
}

func TestFutureCompleteBeforeAwait(t *testing.T) {
	k := NewKernel(1)
	f := CompletedFuture(k, 42, nil)
	var got int
	k.Spawn("reader", func(p *Proc) { got, _ = f.Await(p) })
	k.Run()
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestFutureAwaitBlocksUntilComplete(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[string](k)
	var got string
	var at time.Duration
	k.Spawn("reader", func(p *Proc) {
		got, _ = f.Await(p)
		at = p.Now()
	})
	k.At(9*time.Second, func() { f.Complete("done", nil) })
	k.Run()
	if got != "done" || at != 9*time.Second {
		t.Fatalf("got %q at %v, want done at 9s", got, at)
	}
}

func TestFutureMultipleWaiters(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	total := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *Proc) {
			v, _ := f.Await(p)
			total += v
		})
	}
	k.At(time.Second, func() { f.Complete(5, nil) })
	k.Run()
	if total != 20 {
		t.Fatalf("total = %d, want 20", total)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	k := NewKernel(1)
	f := CompletedFuture(k, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double complete")
		}
	}()
	f.Complete(2, nil)
}

func TestAwaitTimeoutFires(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	var ok bool
	var at time.Duration
	k.Spawn("reader", func(p *Proc) {
		_, _, ok = f.AwaitTimeout(p, 3*time.Second)
		at = p.Now()
	})
	k.Run()
	if ok || at != 3*time.Second {
		t.Fatalf("ok=%v at=%v, want timeout at 3s", ok, at)
	}
}

func TestAwaitTimeoutBeatenByCompletion(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	var v int
	var ok bool
	k.Spawn("reader", func(p *Proc) { v, _, ok = f.AwaitTimeout(p, 10*time.Second) })
	k.At(time.Second, func() { f.Complete(7, nil) })
	k.Run()
	if !ok || v != 7 {
		t.Fatalf("ok=%v v=%d, want completion 7", ok, v)
	}
}

func TestAwaitAllOrderAndError(t *testing.T) {
	k := NewKernel(1)
	fs := []*Future[int]{NewFuture[int](k), NewFuture[int](k), NewFuture[int](k)}
	var got []int
	k.Spawn("fanin", func(p *Proc) { got, _ = AwaitAll(p, fs) })
	// Complete out of order.
	k.At(3*time.Second, func() { fs[0].Complete(10, nil) })
	k.At(1*time.Second, func() { fs[1].Complete(20, nil) })
	k.At(2*time.Second, func() { fs[2].Complete(30, nil) })
	k.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("AwaitAll = %v", got)
	}
}

func TestAwaitAny(t *testing.T) {
	k := NewKernel(1)
	fs := []*Future[int]{NewFuture[int](k), NewFuture[int](k)}
	idx := -1
	var at time.Duration
	k.Spawn("any", func(p *Proc) {
		idx = AwaitAny(p, fs)
		at = p.Now()
	})
	k.At(5*time.Second, func() { fs[1].Complete(1, nil) })
	k.At(8*time.Second, func() { fs[0].Complete(2, nil) })
	k.Run()
	if idx != 1 || at != 5*time.Second {
		t.Fatalf("AwaitAny idx=%d at=%v, want 1 at 5s", idx, at)
	}
}

func TestResourceLimitsConcurrency(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, 2)
	maxInUse := 0
	for i := 0; i < 6; i++ {
		k.Spawn("user", func(p *Proc) {
			r.Acquire(p)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(time.Second)
			r.Release()
		})
	}
	end := k.Run()
	if maxInUse != 2 {
		t.Fatalf("max in use = %d, want 2", maxInUse)
	}
	// 6 jobs, 2 slots, 1s each => 3s makespan.
	if end != 3*time.Second {
		t.Fatalf("makespan = %v, want 3s", end)
	}
}

func TestResourceFIFO(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.SpawnAfter(time.Duration(i)*time.Millisecond, "u", func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Second)
			r.Release()
		})
	}
	k.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("not FIFO: %v", order)
		}
	}
}

func TestResourceGrow(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, 1)
	done := 0
	for i := 0; i < 4; i++ {
		k.Spawn("u", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(10 * time.Second)
			r.Release()
			done++
		})
	}
	k.At(time.Second, func() { r.SetCapacity(4) })
	end := k.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	// First job ends at 10s; the other three start at 1s and end at 11s.
	if end != 11*time.Second {
		t.Fatalf("end = %v, want 11s", end)
	}
}

func TestTryAcquire(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire succeeded at capacity")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestStoreFIFO(t *testing.T) {
	k := NewKernel(1)
	s := NewStore[int](k)
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, s.Get(p))
		}
	})
	k.At(time.Second, func() { s.Put(1); s.Put(2) })
	k.At(2*time.Second, func() { s.Put(3) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestStoreTryGet(t *testing.T) {
	k := NewKernel(1)
	s := NewStore[string](k)
	if _, ok := s.TryGet(); ok {
		t.Fatal("TryGet on empty store succeeded")
	}
	s.Put("x")
	v, ok := s.TryGet()
	if !ok || v != "x" {
		t.Fatalf("TryGet = %q, %v", v, ok)
	}
}

func TestStreamDeterminism(t *testing.T) {
	k1 := NewKernel(99)
	k2 := NewKernel(99)
	a := k1.Stream("lambda")
	b := k2.Stream("lambda")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed,name) streams diverge")
		}
	}
	c := k1.Stream("other")
	d := k1.Stream("lambda")
	same := true
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different names produced identical streams")
	}
}

// TestHeapOrderingRandomized cross-checks the 4-ary event heap against
// a reference sort under adversarial (pseudo-random, tie-heavy)
// insertion order.
func TestHeapOrderingRandomized(t *testing.T) {
	k := NewKernel(1)
	const n = 5000
	var got []Time
	state := uint64(12345)
	for i := 0; i < n; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		// Few distinct times: exercises the seq tiebreak heavily.
		at := time.Duration(state%97) * time.Millisecond
		k.At(at, func() { got = append(got, k.Now()) })
	}
	k.Run()
	if len(got) != n {
		t.Fatalf("ran %d events, want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		if got[i] < got[i-1] {
			t.Fatalf("event %d at %v ran after %v", i, got[i], got[i-1])
		}
	}
}

// TestSameTimeFIFOUnderLoad asserts the (time, seq) tiebreak holds for
// a large same-instant batch (a heap without the seq key would reorder).
func TestSameTimeFIFOUnderLoad(t *testing.T) {
	k := NewKernel(1)
	const n = 2000
	var got []int
	for i := 0; i < n; i++ {
		i := i
		k.At(time.Second, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("slot %d ran event %d: same-instant FIFO broken", i, v)
		}
	}
}

// TestRunReleasesEventStorage asserts the drained queue's backing array
// is dropped so a retained Env does not pin campaign-sized event
// storage (the core.Series memory-retention fix).
func TestRunReleasesEventStorage(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 4096; i++ {
		k.After(time.Duration(i)*time.Millisecond, func() {})
	}
	queued := 0
	for s := range k.shards {
		queued += cap(k.shards[s].keys)
	}
	if queued == 0 {
		t.Fatal("queue unexpectedly empty before Run")
	}
	k.Run()
	for s := range k.shards {
		if k.shards[s].keys != nil || k.shards[s].fns != nil {
			t.Fatalf("shard %d storage retained after drain: cap %d", s, cap(k.shards[s].keys))
		}
	}
	if k.imm != nil {
		t.Fatalf("immediate-lane storage retained after drain: cap %d", cap(k.imm))
	}
	// The kernel must stay usable after the release.
	ran := false
	k.After(0, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("kernel unusable after storage release")
	}
}
