package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw event-loop dispatch rate.
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel(1)
	for i := 0; i < b.N; i++ {
		k.After(time.Duration(i), func() {})
	}
	b.ResetTimer()
	k.Run()
}

// BenchmarkProcContextSwitch measures the park/resume round trip that
// every simulated blocking operation pays.
func BenchmarkProcContextSwitch(b *testing.B) {
	k := NewKernel(1)
	n := b.N
	k.Spawn("switcher", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkFutureFanIn measures fan-out/fan-in through futures.
func BenchmarkFutureFanIn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		futures := make([]*Future[int], 64)
		for j := range futures {
			f := NewFuture[int](k)
			futures[j] = f
			d := time.Duration(j) * time.Microsecond
			k.After(d, func() { f.Complete(1, nil) })
		}
		k.Spawn("fanin", func(p *Proc) {
			if _, err := AwaitAll(p, futures); err != nil {
				b.Error(err)
			}
		})
		k.Run()
	}
}
