package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw event-loop dispatch rate.
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel(1)
	for i := 0; i < b.N; i++ {
		k.After(time.Duration(i), func() {})
	}
	b.ResetTimer()
	k.Run()
}

// BenchmarkProcContextSwitch measures the park/resume round trip that
// every simulated blocking operation pays.
func BenchmarkProcContextSwitch(b *testing.B) {
	k := NewKernel(1)
	n := b.N
	k.Spawn("switcher", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkKernelSchedule measures the full schedule/dispatch cycle of
// the event queue under out-of-order insertion — the per-event cost
// every campaign pays millions of times. Run with -benchmem: the alloc
// count per event is the tracked regression metric.
func BenchmarkKernelSchedule(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel(1)
	fn := func() {}
	// Deterministic pseudo-random times keep the heap honest (pure
	// ascending insertion never exercises sift-down). Scheduling is
	// inside the timed region so allocs/op reflects the At cost.
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < b.N; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		k.At(time.Duration(state%1e9), fn)
	}
	k.Run()
}

// BenchmarkKernelScheduleInterleaved alternates At with dispatch, the
// steady-state shape of a live simulation (queue stays small, slots are
// recycled).
func BenchmarkKernelScheduleInterleaved(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel(1)
	n := b.N
	var step func()
	i := 0
	step = func() {
		if i < n {
			i++
			k.After(time.Microsecond, step)
		}
	}
	k.After(0, step)
	b.ResetTimer()
	k.Run()
}

// BenchmarkFutureFanIn measures fan-out/fan-in through futures.
func BenchmarkFutureFanIn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		futures := make([]*Future[int], 64)
		for j := range futures {
			f := NewFuture[int](k)
			futures[j] = f
			d := time.Duration(j) * time.Microsecond
			k.After(d, func() { f.Complete(1, nil) })
		}
		k.Spawn("fanin", func(p *Proc) {
			if _, err := AwaitAll(p, futures); err != nil {
				b.Error(err)
			}
		})
		k.Run()
	}
}
