package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// shardCounts are the partition counts the equivalence suite runs at,
// per the tier-2 determinism gate: 1 is the reference single heap.
var shardCounts = []int{1, 4, 16}

// scheduleTrace runs a mixed workload — timer events, keyed events,
// immediate events scheduled from inside handlers, sleeping procs,
// future completions — on a kernel with the given shard count and
// returns the full execution trace (time, label) in order.
func scheduleTrace(shards int, delays []uint16) []string {
	k := NewKernelSharded(42, shards)
	var log []string
	record := func(tag string, i int) {
		log = append(log, fmt.Sprintf("%d:%s%d", k.Now(), tag, i))
	}
	for i, d := range delays {
		i := i
		at := time.Duration(d) * time.Millisecond
		switch i % 4 {
		case 0:
			k.At(at, func() {
				record("at", i)
				// Same-instant follow-up: exercises the immediate lane.
				k.After(0, func() { record("imm", i) })
			})
		case 1:
			k.AtKeyed(uint64(i), at, func() { record("key", i) })
		case 2:
			k.SpawnAfter(at, "p", func(p *Proc) {
				record("spawn", i)
				p.Sleep(time.Duration(i%3) * time.Millisecond)
				record("woke", i)
			})
		default:
			f := NewFuture[int](k)
			k.At(at, func() { f.Complete(i, nil) })
			k.Spawn("w", func(p *Proc) {
				v, _ := f.Await(p)
				record("await", v)
			})
		}
	}
	k.Run()
	return log
}

// TestShardEquivalence proves the sharding determinism claim: the
// execution order of an arbitrary schedule is byte-identical across
// shard counts {1, 4, 16}. Partitioning must never reorder events.
func TestShardEquivalence(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 256 {
			delays = delays[:256]
		}
		ref := scheduleTrace(1, delays)
		for _, s := range shardCounts[1:] {
			got := scheduleTrace(s, delays)
			if len(got) != len(ref) {
				return false
			}
			for i := range ref {
				if got[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestShardEquivalenceDense pins the equivalence on a dense, collision
// heavy schedule (many same-instant ties across partitions) where a
// merge that compared anything short of the full (at, seq) key would
// be caught immediately.
func TestShardEquivalenceDense(t *testing.T) {
	delays := make([]uint16, 300)
	for i := range delays {
		delays[i] = uint16(i % 7) // 7 distinct instants, ~43 ties each
	}
	ref := scheduleTrace(1, delays)
	for _, s := range shardCounts[1:] {
		got := scheduleTrace(s, delays)
		if len(got) != len(ref) {
			t.Fatalf("shards=%d: %d events, want %d", s, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("shards=%d: event %d = %q, want %q", s, i, got[i], ref[i])
			}
		}
	}
}

// TestShardCountRounding checks construction clamps and rounding.
func TestShardCountRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{16, 16}, {17, 32}, {1 << 20, maxShards},
	}
	for _, c := range cases {
		if got := NewKernelSharded(1, c.in).ShardCount(); got != c.want {
			t.Errorf("NewKernelSharded(_, %d).ShardCount() = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestExecutedCounter checks the events/sec denominator.
func TestExecutedCounter(t *testing.T) {
	k := NewKernelSharded(1, 4)
	const n = 100
	for i := 0; i < n; i++ {
		k.At(time.Duration(i%5)*time.Millisecond, func() {})
	}
	k.Run()
	if k.Executed() != n {
		t.Fatalf("Executed() = %d, want %d", k.Executed(), n)
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", k.Pending())
	}
}

// TestShardedRunUntilDeadline checks the deadline cut consults the
// global minimum, not a single partition's head.
func TestShardedRunUntilDeadline(t *testing.T) {
	k := NewKernelSharded(9, 4)
	var ran []int
	for i := 0; i < 40; i++ {
		i := i
		k.AtKeyed(uint64(i), time.Duration(i)*time.Second, func() { ran = append(ran, i) })
	}
	k.RunUntil(19 * time.Second)
	if len(ran) != 20 {
		t.Fatalf("ran %d events before deadline, want 20", len(ran))
	}
	for i, v := range ran {
		if v != i {
			t.Fatalf("slot %d ran event %d", i, v)
		}
	}
	if k.Pending() != 20 {
		t.Fatalf("Pending() = %d, want 20", k.Pending())
	}
	if k.Now() != 19*time.Second {
		t.Fatalf("Now() = %v, want 19s", k.Now())
	}
	k.Run()
	if len(ran) != 40 || k.Pending() != 0 {
		t.Fatalf("resume after deadline: ran=%d pending=%d", len(ran), k.Pending())
	}
}

// TestArenaRecycle checks handle stability and free-list reuse,
// including the no-zeroing contract that keeps slot-lifetime closures
// alive across recycling.
func TestArenaRecycle(t *testing.T) {
	type rec struct {
		n    int
		fire func()
	}
	var a Arena[rec]
	fired := 0
	h1, r1 := a.Alloc()
	r1.n = 7
	r1.fire = func() { fired += a.At(h1).n }
	h2, r2 := a.Alloc()
	r2.n = 100
	if a.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", a.InUse())
	}
	a.Free(h1)
	h3, r3 := a.Alloc()
	if h3 != h1 {
		t.Fatalf("free-list reuse: got handle %d, want %d", h3, h1)
	}
	if r3.fire == nil {
		t.Fatal("slot closure wiped on recycle")
	}
	r3.n = 5
	r3.fire()
	if fired != 5 {
		t.Fatalf("recycled closure read %d, want 5", fired)
	}
	a.Free(h2)
	a.Free(h3)
	if a.InUse() != 0 {
		t.Fatalf("InUse = %d after frees, want 0", a.InUse())
	}
	// Cross a chunk boundary; pointers must stay stable.
	ptrs := make(map[int32]*rec)
	for i := 0; i < 3*arenaChunkSize; i++ {
		h, r := a.Alloc()
		ptrs[h] = r
	}
	for h, p := range ptrs {
		if a.At(h) != p {
			t.Fatalf("handle %d moved", h)
		}
	}
}
