package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// Property: events always fire in non-decreasing time order, FIFO
// within an instant, for arbitrary scheduling sequences.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		k := NewKernel(1)
		type fired struct {
			at  Time
			seq int
		}
		var log []fired
		for i, d := range delays {
			i, at := i, time.Duration(d)*time.Millisecond
			k.At(at, func() { log = append(log, fired{at: k.Now(), seq: i}) })
		}
		k.Run()
		if len(log) != len(delays) {
			return false
		}
		for i := 1; i < len(log); i++ {
			if log[i].at < log[i-1].at {
				return false
			}
			// FIFO within the same instant: scheduling order preserved.
			if log[i].at == log[i-1].at && log[i].seq < log[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a resource never exceeds its capacity and all acquirers
// eventually run, for arbitrary hold times and arrival offsets.
func TestPropertyResourceSafety(t *testing.T) {
	f := func(holds []uint8, capRaw uint8) bool {
		if len(holds) == 0 || len(holds) > 64 {
			return true
		}
		capacity := int(capRaw%8) + 1
		k := NewKernel(2)
		r := NewResource(k, capacity)
		inUse, maxUse, completed := 0, 0, 0
		for i, h := range holds {
			hold := time.Duration(h%50+1) * time.Millisecond
			k.SpawnAfter(time.Duration(i%7)*time.Millisecond, "u", func(p *Proc) {
				r.Acquire(p)
				inUse++
				if inUse > maxUse {
					maxUse = inUse
				}
				p.Sleep(hold)
				inUse--
				r.Release()
				completed++
			})
		}
		k.Run()
		return maxUse <= capacity && completed == len(holds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the kernel's run is reproducible — the same schedule built
// from the same inputs yields identical event timestamps.
func TestPropertyKernelReproducible(t *testing.T) {
	f := func(seed uint64, delays []uint16) bool {
		run := func() []Time {
			k := NewKernel(seed)
			rng := k.Stream("jitter")
			var log []Time
			for _, d := range delays {
				at := time.Duration(d)*time.Millisecond + time.Duration(rng.Intn(1000))*time.Microsecond
				k.At(at, func() { log = append(log, k.Now()) })
			}
			k.Run()
			return log
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Store preserves FIFO order for any put/get interleaving.
func TestPropertyStoreFIFO(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		k := NewKernel(3)
		s := NewStore[int16](k)
		var got []int16
		k.Spawn("consumer", func(p *Proc) {
			for range vals {
				got = append(got, s.Get(p))
			}
		})
		for i, v := range vals {
			v := v
			k.At(time.Duration(i)*time.Millisecond, func() { s.Put(v) })
		}
		k.Run()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
