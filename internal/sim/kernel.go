// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock by executing events in (time,
// sequence) order. On top of raw events it offers simpy-style blocking
// processes (see Proc): goroutines that run one at a time, interleaved
// with the event loop, so that simulation code can be written in plain
// sequential style (Sleep, Await, resource acquisition) while the whole
// run remains fully deterministic and independent of the host clock.
//
// Exactly one logical thread of control is active at any instant —
// either the kernel's event loop or a single process — so simulation
// state never needs locking.
//
// # Concurrency contract
//
// A Kernel and everything attached to it (processes, futures,
// resources, the simulated platforms of a core.Env) belong to exactly
// one host goroutine: the one that calls Run. Kernels are cheap; code
// that wants parallelism creates one kernel per goroutine (see
// internal/parallel) and never shares a kernel, a Proc, or any
// simulated component across host goroutines. Nothing in this package
// locks, by design.
//
// # Sharded event storage
//
// Internally the pending-event set is split across S per-partition
// 4-ary heaps (S is a power of two, chosen at construction; NewKernel
// uses one) plus an O(1) FIFO lane for events due at the current
// instant. The event loop merges across partitions by scanning a flat
// array of cached head keys and always executing the globally minimal
// (at, seq) pair. Because seq is assigned from a single kernel-wide
// counter and the merge compares full keys, the execution order is
// exactly the single-heap order for every shard count: partitioning
// affects only which backing array an event waits in, never when it
// runs. See DESIGN.md §11 for the full determinism argument.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Time is a point in virtual time, measured as an offset from the start
// of the simulation.
type Time = time.Duration

// event is a scheduled callback. The struct is deliberately kept at
// three words: the heap stores events by value, so every extra field
// is copied on every sift — widening it measurably slows the
// push/pop hot path.
type event struct {
	at  Time
	seq int64
	fn  func()
}

// eventKey is the 16-byte ordering key of a queued event. Keys live in
// their own backing array so that one 4-ary sift level's four children
// span exactly one cache line (4 × 16 B); with the closure pointers
// inline (24-byte elements) every level touched two.
type eventKey struct {
	at  Time
	seq int64
}

// before orders keys by (at, seq): time first, insertion order on ties.
func (a eventKey) before(b eventKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is a 4-ary min-heap of events ordered by (at, seq), stored
// structure-of-arrays: keys and closures in parallel backing slices.
// Compared to container/heap with boxed *event items this kills the
// per-At allocation (the backing arrays are their own free lists:
// popped slots are reused by later pushes); the 4-ary layout halves the
// tree depth; the key/closure split halves the cache lines per sifted
// level — under multi-million-event pending sets the heap walk is
// memory-bound, so lines per level is the whole cost model. Sifts move
// a hole instead of swapping (one array write per level, not three).
type eventQueue struct {
	keys []eventKey
	fns  []func()
}

// len returns the number of queued events.
func (q *eventQueue) len() int { return len(q.keys) }

// head returns the minimum key. Call only when len() > 0.
func (q *eventQueue) head() eventKey { return q.keys[0] }

// push appends e and restores the heap property.
func (q *eventQueue) push(e event) {
	n := len(q.keys)
	if n == cap(q.keys) || n == cap(q.fns) {
		// Grow whichever array is full (caps can drift apart across
		// size classes, so both are checked, not assumed in step).
		q.keys = append(q.keys, eventKey{})[:n]
		q.fns = append(q.fns, nil)[:n]
	}
	ks, fs := q.keys[:n+1], q.fns[:n+1]
	q.keys, q.fns = ks, fs
	// Sift the hole up: parents move down until e's slot is found; the
	// new element is written exactly once, into its final slot.
	key := eventKey{at: e.at, seq: e.seq}
	i := n
	for i > 0 {
		p := (i - 1) / 4
		if !key.before(ks[p]) {
			break
		}
		ks[i], fs[i] = ks[p], fs[p]
		i = p
	}
	ks[i], fs[i] = key, e.fn
}

// pop removes and returns the minimum event.
func (q *eventQueue) pop() event {
	ks, fs := q.keys, q.fns
	top := event{at: ks[0].at, seq: ks[0].seq, fn: fs[0]}
	n := len(ks) - 1
	key, fn := ks[n], fs[n]
	ks[n], fs[n] = eventKey{}, nil // release the closure to the GC
	ks, fs = ks[:n], fs[:n]
	if n > 0 {
		// Sift the hole down: the displaced last element chases it.
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			last := first + 4
			if last > n {
				last = n
			}
			min := first
			for c := first + 1; c < last; c++ {
				if ks[c].before(ks[min]) {
					min = c
				}
			}
			if !ks[min].before(key) {
				break
			}
			ks[i], fs[i] = ks[min], fs[min]
			i = min
		}
		ks[i], fs[i] = key, fn
	}
	q.keys, q.fns = ks, fs
	return top
}

// release frees the backing arrays.
func (q *eventQueue) release() { q.keys, q.fns = nil, nil }

// headSentinel marks an empty shard in the cached head-key arrays. No
// real event can carry it: at is clamped to the clock (≥ 0) and seq
// starts at 1.
const headSentinel = math.MaxInt64

// maxShards bounds the shard count; beyond this the O(S) head scan per
// pop costs more than the smaller heaps save.
const maxShards = 1024

// Kernel is a discrete-event simulation engine with a virtual clock.
// Create one with NewKernel (single event partition) or
// NewKernelSharded; it is not safe for concurrent use from multiple
// host goroutines (all access must come from the event loop or from
// the currently running Proc — see the package comment's concurrency
// contract).
type Kernel struct {
	now     Time
	seq     int64
	yield   chan struct{} // signalled when the running proc parks/exits
	seed    uint64
	procSeq int64
	stopped bool
	live    int // live (started, unfinished) procs; diagnostics only

	// Sharded pending-event storage. shards holds the per-partition
	// heaps; headAt/headSeq cache each shard's minimum key (headSentinel
	// when empty) so the cross-partition merge scans two flat int64
	// arrays instead of chasing heap backing arrays.
	shards  []eventQueue
	headAt  []Time
	headSeq []int64
	mask    uint32 // len(shards)-1; shard routing is hash & mask

	// minAt/minSeq/minSrc cache the global minimum over the shard
	// heads. A push can only lower its shard's head, so it refreshes
	// the cache with one compare; only a heap pop (which changed the
	// minimum shard's head) triggers the O(shards) rescan. Immediate-
	// lane pops never touch shard heads, so the merge step for them is
	// O(1) at any shard count.
	minAt  Time
	minSeq int64
	minSrc int32

	// imm is the immediate lane: a FIFO of events due at the current
	// instant. Entries are appended with kernel-wide increasing seq, so
	// the lane is (at, seq)-sorted by construction, and the clock can
	// never advance past them (their at is never in the future), so the
	// lane never holds a stale instant. Same-instant scheduling —
	// wake(0), After(0), future completions — dominates real workloads,
	// and the lane serves it with an append and an index bump instead
	// of two O(log n) heap walks.
	imm     []event
	immHead int

	cur      uint32 // shard of the event being executed; routes At
	pending  int
	executed uint64

	// Tick listener: a passive observer of clock advancement, invoked by
	// the run loop whenever the clock crosses a tickEvery boundary —
	// before the boundary-crossing event's callback runs, so the
	// listener sees the pre-event state of the instant it is told about.
	// The listener is not an event: it draws no sequence number,
	// schedules nothing, and therefore cannot perturb execution order —
	// simulation results are byte-identical with or without one.
	tickFn    func(boundary Time)
	tickEvery Time
	tickNext  Time
}

// NewKernel returns a kernel whose clock starts at zero. seed is the
// master seed from which all component RNG streams are derived; the same
// seed always reproduces the same run.
func NewKernel(seed uint64) *Kernel { return NewKernelSharded(seed, 1) }

// NewKernelSharded returns a kernel whose pending-event set is split
// across shards partitions (rounded up to a power of two, clamped to
// [1, 1024]). Sharding is purely an event-storage layout choice: the
// execution order — and therefore every simulation result — is
// byte-identical for every shard count. More shards mean smaller,
// cache-friendlier heaps under very large pending sets (millions of
// queued events) at the cost of an O(shards) head scan per pop.
func NewKernelSharded(seed uint64, shards int) *Kernel {
	if shards < 1 {
		shards = 1
	}
	if shards > maxShards {
		shards = maxShards
	}
	if shards&(shards-1) != 0 {
		shards = 1 << bits.Len(uint(shards))
	}
	k := &Kernel{
		yield:   make(chan struct{}),
		seed:    seed,
		shards:  make([]eventQueue, shards),
		headAt:  make([]Time, shards),
		headSeq: make([]int64, shards),
		mask:    uint32(shards - 1),
	}
	for s := range k.headAt {
		k.headAt[s] = headSentinel
		k.headSeq[s] = headSentinel
	}
	k.minAt, k.minSeq, k.minSrc = headSentinel, headSentinel, -1
	return k
}

// rescanHeads recomputes the cached global minimum over the shard
// heads. Called after a heap pop (the popped shard's head changed) and
// on drain.
func (k *Kernel) rescanHeads() {
	at, seq, src := Time(headSentinel), int64(headSentinel), int32(-1)
	for s, ha := range k.headAt {
		if ha < at || (ha == at && k.headSeq[s] < seq) {
			at, seq, src = ha, k.headSeq[s], int32(s)
		}
	}
	k.minAt, k.minSeq, k.minSrc = at, seq, src
}

// ShardCount returns the number of event partitions.
func (k *Kernel) ShardCount() int { return len(k.shards) }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the master seed the kernel was created with.
func (k *Kernel) Seed() uint64 { return k.seed }

// push routes an event to the immediate lane if it is due at the
// current instant, otherwise to the given shard's heap, refreshing the
// cached head key.
func (k *Kernel) push(shard uint32, e event) {
	k.pending++
	if e.at == k.now {
		k.imm = append(k.imm, e)
		return
	}
	q := &k.shards[shard]
	q.push(e)
	if k.mask == 0 {
		// Single-shard kernels skip the head/min caches entirely: the
		// one heap's head is the global minimum, read directly by
		// RunUntil's fast path. The cache arrays stay all-sentinel.
		return
	}
	h := q.head()
	k.headAt[shard] = h.at
	k.headSeq[shard] = h.seq
	// A push only lowers (or keeps) its shard's head, so the cached
	// global minimum stays valid unless this head undercuts it.
	if h.at < k.minAt || (h.at == k.minAt && h.seq < k.minSeq) {
		k.minAt, k.minSeq, k.minSrc = h.at, h.seq, int32(shard)
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) runs the event at the current time, after already-queued
// events for this instant. The event lands in the partition of the
// event currently executing (partition 0 outside the loop); use AtKeyed
// to pin related work to one partition.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.push(k.cur&k.mask, event{at: t, seq: k.seq, fn: fn})
}

// AtKeyed is At with an explicit partition affinity key: all events
// scheduled under the same key share a shard heap, keeping a tenant's
// (or a platform component's) timer footprint within one backing
// array. The key changes only data layout — execution order is
// independent of partition assignment.
func (k *Kernel) AtKeyed(key uint64, t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.push(uint32(mix64(key))&k.mask, event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (k *Kernel) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+d, fn)
}

// pushUnpark schedules p's resume d from now without allocating: the
// closure is the per-process unparkFn bound once at spawn — the hot
// path behind Proc.wake (and so Sleep), millions of events per
// campaign, which used to allocate a method value each.
func (k *Kernel) pushUnpark(d time.Duration, p *Proc) {
	if d < 0 {
		d = 0
	}
	k.seq++
	k.push(p.shard&k.mask, event{at: k.now + d, seq: k.seq, fn: p.unparkFn})
}

// pushCondUnpark schedules a conditional wake-up d from now: when the
// event fires, p is resumed — through a second unpark event, keeping
// the two-hop event shape (and therefore the sequence-number layout)
// of the flag-based path it replaced — only if p's await generation
// still equals gen. A stale generation means the other side of a
// timeout race already woke the process, and the event is a no-op.
// The one closure allocated here is per timed await, not per wake.
func (k *Kernel) pushCondUnpark(d time.Duration, p *Proc, gen uint64) {
	if d < 0 {
		d = 0
	}
	k.seq++
	k.push(p.shard&k.mask, event{at: k.now + d, seq: k.seq, fn: func() {
		if p.awaitGen == gen {
			p.awaitGen++
			k.pushUnpark(0, p)
		}
	}})
}

// Run executes events until the queue is empty or Stop is called.
// It returns the final virtual time.
func (k *Kernel) Run() Time { return k.RunUntil(-1) }

// RunUntil executes events until the queue is empty, Stop is called, or
// the next event would be after deadline (deadline < 0 means no limit).
// The clock is left at the last executed event (or at deadline, if the
// deadline cut execution short and deadline is beyond the clock).
func (k *Kernel) RunUntil(deadline Time) Time {
	single := k.mask == 0
	for k.pending > 0 && !k.stopped {
		// Merge: the next event is the global (at, seq) minimum across
		// the immediate lane and the cached shard-head minimum. The lane
		// head is a candidate only on equal at (its at is always the
		// current instant, never ahead of a shard head's), so ties fall
		// to seq — and the whole step is O(1): the O(shards) rescan runs
		// only after heap pops, inside rescanHeads. Single-shard kernels
		// read the one heap's head directly and skip the caches (and the
		// rescan) altogether — the pre-shard kernel's exact cost model.
		var at Time
		var seq int64
		var src int
		if single {
			at, seq, src = headSentinel, headSentinel, 0
			if q := &k.shards[0]; len(q.keys) > 0 {
				at, seq = q.keys[0].at, q.keys[0].seq
			}
		} else {
			at, seq, src = k.minAt, k.minSeq, int(k.minSrc)
		}
		if k.immHead < len(k.imm) {
			ie := &k.imm[k.immHead]
			if ie.at < at || (ie.at == at && ie.seq < seq) {
				at, seq, src = ie.at, ie.seq, -1
			}
		}
		if deadline >= 0 && at > deadline {
			if deadline > k.now {
				k.now = deadline
			}
			return k.now
		}
		var fn func()
		if src < 0 {
			fn = k.imm[k.immHead].fn
			k.imm[k.immHead] = event{} // release the closure to the GC
			k.immHead++
			if k.immHead == len(k.imm) {
				k.imm = k.imm[:0] // drained: reuse the backing array
				k.immHead = 0
			}
		} else {
			q := &k.shards[src]
			fn = q.pop().fn
			if !single {
				if q.len() > 0 {
					h := q.head()
					k.headAt[src] = h.at
					k.headSeq[src] = h.seq
				} else {
					k.headAt[src] = headSentinel
					k.headSeq[src] = headSentinel
				}
				k.cur = uint32(src)
				k.rescanHeads()
			}
		}
		k.pending--
		k.executed++
		k.now = at
		if k.tickFn != nil && at >= k.tickNext {
			// Coalesce: after an idle gap the listener is told only the
			// last boundary at or before the clock, not every skipped one
			// (windowed telemetry has nothing to say about empty windows).
			b := at - at%k.tickEvery
			k.tickNext = b + k.tickEvery
			k.tickFn(b)
		}
		fn()
	}
	if k.pending == 0 {
		// The run drained: release the event storage. Callers routinely
		// keep the Env (and so the kernel) alive long after a campaign
		// for drill-downs; the backing arrays should not be pinned with
		// it. The head-key arrays already read all-sentinel and stay.
		for s := range k.shards {
			k.shards[s].release()
		}
		k.imm = nil
		k.immHead = 0
		k.minAt, k.minSeq, k.minSrc = headSentinel, headSentinel, -1
	}
	return k.now
}

// SetTickListener registers fn to be called by the run loop each time
// the clock reaches or crosses a multiple of every, passing the
// boundary crossed (ticks skipped while no events fire are coalesced
// into the most recent boundary). The listener is passive: it runs
// outside the event order, draws no sequence numbers, and must not
// schedule events or otherwise mutate simulation state — it exists so
// telemetry can observe window boundaries without perturbing the run.
// The first tick fires at `every`, not at 0. A nil fn (or every <= 0)
// removes the listener, restoring the zero-cost path.
func (k *Kernel) SetTickListener(every Time, fn func(boundary Time)) {
	if fn == nil || every <= 0 {
		k.tickFn, k.tickEvery, k.tickNext = nil, 0, 0
		return
	}
	k.tickFn, k.tickEvery = fn, every
	k.tickNext = (k.now/every)*every + every
}

// Stop halts the event loop after the current event completes. Parked
// processes are abandoned (their goroutines remain blocked until process
// exit; they hold no host resources beyond their stacks).
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return k.pending }

// Executed returns the total number of events the kernel has run, the
// denominator for events/sec throughput reporting.
func (k *Kernel) Executed() uint64 { return k.executed }

// LiveProcs returns the number of spawned processes that have not yet
// finished (parked processes count). Useful for leak detection in tests.
func (k *Kernel) LiveProcs() int { return k.live }

// String implements fmt.Stringer for debugging.
func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{now: %v, pending: %d, procs: %d}", k.now, k.pending, k.live)
}
