// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock by executing events in (time,
// sequence) order. On top of raw events it offers simpy-style blocking
// processes (see Proc): goroutines that run one at a time, interleaved
// with the event loop, so that simulation code can be written in plain
// sequential style (Sleep, Await, resource acquisition) while the whole
// run remains fully deterministic and independent of the host clock.
//
// Exactly one logical thread of control is active at any instant —
// either the kernel's event loop or a single process — so simulation
// state never needs locking.
//
// # Concurrency contract
//
// A Kernel and everything attached to it (processes, futures,
// resources, the simulated platforms of a core.Env) belong to exactly
// one host goroutine: the one that calls Run. Kernels are cheap; code
// that wants parallelism creates one kernel per goroutine (see
// internal/parallel) and never shares a kernel, a Proc, or any
// simulated component across host goroutines. Nothing in this package
// locks, by design.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured as an offset from the start
// of the simulation.
type Time = time.Duration

// event is a scheduled callback. The struct is deliberately kept at
// three words: the heap stores events by value, so every extra field
// is copied on every sift — widening it measurably slows the
// push/pop hot path.
type event struct {
	at  Time
	seq int64
	fn  func()
}

// eventQueue is a 4-ary min-heap of events ordered by (at, seq), stored
// by value in a single backing array. Compared to container/heap with
// boxed *event items this kills the per-At allocation (the backing
// array is its own free list: popped slots are reused by later pushes)
// and the 4-ary layout halves the tree depth, trading slightly wider
// sift-down comparisons for fewer cache-missing levels — the usual win
// for small keys.
type eventQueue []event

// less orders by (at, seq): time first, insertion order on ties.
func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

// push appends e and restores the heap property.
func (q *eventQueue) push(e event) {
	h := append(*q, e)
	// Sift up.
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h.less(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*q = h
}

// pop removes and returns the minimum event.
func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the fn closure to the GC
	h = h[:n]
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		min := i
		for c := first; c < last; c++ {
			if h.less(c, min) {
				min = c
			}
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	*q = h
	return top
}

// Kernel is a discrete-event simulation engine with a virtual clock.
// Create one with NewKernel; it is not safe for concurrent use from
// multiple host goroutines (all access must come from the event loop or
// from the currently running Proc — see the package comment's
// concurrency contract).
type Kernel struct {
	now     Time
	seq     int64
	pq      eventQueue
	yield   chan struct{} // signalled when the running proc parks/exits
	seed    uint64
	procSeq int64
	stopped bool
	live    int // live (started, unfinished) procs; diagnostics only
}

// NewKernel returns a kernel whose clock starts at zero. seed is the
// master seed from which all component RNG streams are derived; the same
// seed always reproduces the same run.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		seed:  seed,
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the master seed the kernel was created with.
func (k *Kernel) Seed() uint64 { return k.seed }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) runs the event at the current time, after already-queued
// events for this instant.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.pq.push(event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (k *Kernel) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+d, fn)
}

// pushUnpark schedules p's resume d from now without allocating: the
// closure is the per-process unparkFn bound once at spawn — the hot
// path behind Proc.wake (and so Sleep), millions of events per
// campaign, which used to allocate a method value each.
func (k *Kernel) pushUnpark(d time.Duration, p *Proc) {
	if d < 0 {
		d = 0
	}
	k.seq++
	k.pq.push(event{at: k.now + d, seq: k.seq, fn: p.unparkFn})
}

// pushCondUnpark schedules a conditional wake-up d from now: when the
// event fires, p is resumed — through a second unpark event, keeping
// the two-hop event shape (and therefore the sequence-number layout)
// of the flag-based path it replaced — only if p's await generation
// still equals gen. A stale generation means the other side of a
// timeout race already woke the process, and the event is a no-op.
// The one closure allocated here is per timed await, not per wake.
func (k *Kernel) pushCondUnpark(d time.Duration, p *Proc, gen uint64) {
	if d < 0 {
		d = 0
	}
	k.seq++
	k.pq.push(event{at: k.now + d, seq: k.seq, fn: func() {
		if p.awaitGen == gen {
			p.awaitGen++
			k.pushUnpark(0, p)
		}
	}})
}

// Run executes events until the queue is empty or Stop is called.
// It returns the final virtual time.
func (k *Kernel) Run() Time { return k.RunUntil(-1) }

// RunUntil executes events until the queue is empty, Stop is called, or
// the next event would be after deadline (deadline < 0 means no limit).
// The clock is left at the last executed event (or at deadline, if the
// deadline cut execution short and deadline is beyond the clock).
func (k *Kernel) RunUntil(deadline Time) Time {
	for len(k.pq) > 0 && !k.stopped {
		if deadline >= 0 && k.pq[0].at > deadline {
			if deadline > k.now {
				k.now = deadline
			}
			return k.now
		}
		ev := k.pq.pop()
		k.now = ev.at
		ev.fn()
	}
	if len(k.pq) == 0 {
		// The run drained: release the event storage. Callers routinely
		// keep the Env (and so the kernel) alive long after a campaign
		// for drill-downs; the queue's backing array should not be
		// pinned with it.
		k.pq = nil
	}
	return k.now
}

// Stop halts the event loop after the current event completes. Parked
// processes are abandoned (their goroutines remain blocked until process
// exit; they hold no host resources beyond their stacks).
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.pq) }

// LiveProcs returns the number of spawned processes that have not yet
// finished (parked processes count). Useful for leak detection in tests.
func (k *Kernel) LiveProcs() int { return k.live }

// String implements fmt.Stringer for debugging.
func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{now: %v, pending: %d, procs: %d}", k.now, len(k.pq), k.live)
}
