// Package core is the paper's contribution packaged as a library: a
// cross-platform framework for deploying the same stateful workflow in
// the six implementation styles of Table II (AWS-Lambda, AWS-Step,
// Az-Func, Az-Queue, Az-Dorch, Az-Dent), measuring end-to-end latency,
// cold starts, and latency breakdowns, and pricing each run with both
// clouds' billing models.
package core

import "fmt"

// Impl identifies one implementation style from Table II.
type Impl string

// The six implementation styles.
const (
	AWSLambda Impl = "AWS-Lambda"
	AWSStep   Impl = "AWS-Step"
	AzFunc    Impl = "Az-Func"
	AzQueue   Impl = "Az-Queue"
	AzDorch   Impl = "Az-Dorch"
	AzDent    Impl = "Az-Dent"
)

// AllImpls lists the styles in Table II order.
func AllImpls() []Impl {
	return []Impl{AWSLambda, AWSStep, AzFunc, AzQueue, AzDorch, AzDent}
}

// CloudKind distinguishes the two providers.
type CloudKind int

// Cloud kinds.
const (
	AWS CloudKind = iota
	Azure
)

// String implements fmt.Stringer.
func (c CloudKind) String() string {
	if c == AWS {
		return "AWS"
	}
	return "Azure"
}

// Cloud returns the provider hosting this style.
func (i Impl) Cloud() CloudKind {
	switch i {
	case AWSLambda, AWSStep:
		return AWS
	default:
		return Azure
	}
}

// Stateful reports whether the style uses a platform stateful extension
// (Table II's "Stateful" column).
func (i Impl) Stateful() bool { return i == AWSStep || i == AzDorch || i == AzDent }

// Valid reports whether i is one of the six styles.
func (i Impl) Valid() bool {
	switch i {
	case AWSLambda, AWSStep, AzFunc, AzQueue, AzDorch, AzDent:
		return true
	}
	return false
}

// Description returns the Table II description text.
func (i Impl) Description() string {
	switch i {
	case AWSLambda:
		return "One stateless Lambda function."
	case AWSStep:
		return "Workflow implementation using AWS Step Functions, calling AWS Lambda functions on each state."
	case AzFunc:
		return "One stateless Azure function."
	case AzQueue:
		return "Isolated functions connecting through Azure queues."
	case AzDorch:
		return "Workflow implemented using Azure Durable orchestrators, calling isolated functions through call_activity."
	case AzDent:
		return "Workflow implemented using Azure Durable orchestrators, calling stateful entities through call_entity."
	}
	return "unknown"
}

// UnsupportedImplError reports a workflow/style combination with no
// implementation (Table II has gaps, e.g. Az-Queue video processing).
type UnsupportedImplError struct {
	Workflow string
	Impl     Impl
}

func (e *UnsupportedImplError) Error() string {
	return fmt.Sprintf("core: workflow %q has no %s implementation", e.Workflow, e.Impl)
}
