// Package core is the paper's contribution packaged as a library: a
// cross-platform framework for deploying the same stateful workflow in
// the six implementation styles of Table II (AWS-Lambda, AWS-Step,
// Az-Func, Az-Queue, Az-Dorch, Az-Dent), measuring end-to-end latency,
// cold starts, and latency breakdowns, and pricing each run with the
// registered providers' billing models. Providers plug in through the
// registry (registry.go); additional clouds (internal/gcp) register
// themselves without touching this package.
package core

import "fmt"

// Impl identifies one implementation style. The six Table II styles
// are declared here; additional providers declare theirs alongside
// their RegisterProvider call.
type Impl string

// The six implementation styles of the paper.
const (
	AWSLambda Impl = "AWS-Lambda"
	AWSStep   Impl = "AWS-Step"
	AzFunc    Impl = "Az-Func"
	AzQueue   Impl = "Az-Queue"
	AzDorch   Impl = "Az-Dorch"
	AzDent    Impl = "Az-Dent"
)

// AllImpls lists the paper's styles in Table II order. Third-provider
// styles are deliberately excluded — every paper table and figure
// iterates this list, and their output must not change as providers
// are registered. Use RegisteredImpls for the full registry contents.
func AllImpls() []Impl {
	return []Impl{AWSLambda, AWSStep, AzFunc, AzQueue, AzDorch, AzDent}
}

// CloudKind identifies a registered provider.
type CloudKind int

// The paper's two cloud kinds. Additional providers allocate the next
// free value alongside their ProviderSpec (internal/gcp takes 2)
// without editing this package.
const (
	AWS CloudKind = iota
	Azure
)

// String implements fmt.Stringer with the registered provider name.
func (c CloudKind) String() string {
	if spec, ok := providerRegistry[c]; ok {
		return spec.Name
	}
	return fmt.Sprintf("cloud(%d)", int(c))
}

// Cloud returns the provider hosting this style. Unregistered styles
// report Azure, preserving the pre-registry fallback.
func (i Impl) Cloud() CloudKind {
	if info, ok := styleRegistry[i]; ok {
		return info.Kind
	}
	return Azure
}

// Stateful reports whether the style uses a platform stateful extension
// (Table II's "Stateful" column).
func (i Impl) Stateful() bool { return styleRegistry[i].Stateful }

// Valid reports whether i is a registered style.
func (i Impl) Valid() bool {
	_, ok := styleRegistry[i]
	return ok
}

// Description returns the style's registered description text.
func (i Impl) Description() string {
	if info, ok := styleRegistry[i]; ok {
		return info.Description
	}
	return "unknown"
}

// UnsupportedImplError reports a workflow/style combination with no
// implementation (Table II has gaps, e.g. Az-Queue video processing).
type UnsupportedImplError struct {
	Workflow string
	Impl     Impl
}

func (e *UnsupportedImplError) Error() string {
	return fmt.Sprintf("core: workflow %q has no %s implementation", e.Workflow, e.Impl)
}
