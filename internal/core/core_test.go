package core

import (
	"testing"
	"time"

	"statebench/internal/sim"
)

func TestImplProperties(t *testing.T) {
	if len(AllImpls()) != 6 {
		t.Fatal("six styles expected")
	}
	cases := []struct {
		impl     Impl
		cloud    CloudKind
		stateful bool
	}{
		{AWSLambda, AWS, false},
		{AWSStep, AWS, true},
		{AzFunc, Azure, false},
		{AzQueue, Azure, false},
		{AzDorch, Azure, true},
		{AzDent, Azure, true},
	}
	for _, c := range cases {
		if c.impl.Cloud() != c.cloud || c.impl.Stateful() != c.stateful {
			t.Errorf("%s: cloud=%v stateful=%v", c.impl, c.impl.Cloud(), c.impl.Stateful())
		}
		if !c.impl.Valid() {
			t.Errorf("%s not valid", c.impl)
		}
		if c.impl.Description() == "unknown" {
			t.Errorf("%s has no description", c.impl)
		}
	}
	if Impl("nope").Valid() {
		t.Fatal("bogus impl valid")
	}
	if AWS.String() != "AWS" || Azure.String() != "Azure" {
		t.Fatal("cloud names")
	}
}

// fakeWorkflow is a minimal workflow for framework tests: one simulated
// function on each cloud with fixed behavior.
type fakeWorkflow struct {
	e2e time.Duration
}

func (f *fakeWorkflow) Name() string  { return "fake" }
func (f *fakeWorkflow) Impls() []Impl { return []Impl{AWSLambda, AzFunc} }

type fakeRunner struct {
	env *Env
	d   time.Duration
}

func (r *fakeRunner) Invoke(p *sim.Proc, _ []byte) (RunStats, error) {
	p.Sleep(r.d)
	return RunStats{E2E: r.d, ExecTime: r.d / 2, ColdStart: r.d / 10}, nil
}

func (f *fakeWorkflow) Deploy(env *Env, impl Impl) (*Deployment, error) {
	if !SupportsImpl(f, impl) {
		return nil, &UnsupportedImplError{Workflow: f.Name(), Impl: impl}
	}
	return &Deployment{Runner: &fakeRunner{env: env, d: f.e2e}, FuncCount: 1, CodeSizeMB: 1}, nil
}

func TestMeasureCollectsSeries(t *testing.T) {
	wf := &fakeWorkflow{e2e: 2 * time.Second}
	opt := DefaultMeasureOptions()
	opt.Iters = 7
	s, err := Measure(wf, AWSLambda, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s.E2E.Len() != 7 || s.Cold.Len() != 7 || s.Breakdowns.Len() != 7 {
		t.Fatalf("sample counts %d/%d/%d", s.E2E.Len(), s.Cold.Len(), s.Breakdowns.Len())
	}
	if s.E2E.Median() != 2*time.Second {
		t.Fatalf("median = %v", s.E2E.Median())
	}
	b := s.Breakdowns.AtQuantile(0.5)
	// 2s total = 0.2 cold + 1.0 exec + 0.8 queue.
	if b.ExecTime != time.Second || b.ColdStart != 200*time.Millisecond || b.QueueTime != 800*time.Millisecond {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestMeasureRejectsUnsupportedImpl(t *testing.T) {
	wf := &fakeWorkflow{e2e: time.Second}
	if _, err := Measure(wf, AzDorch, DefaultMeasureOptions()); err == nil {
		t.Fatal("unsupported impl measured")
	}
}

func TestMeasureAllCoversImpls(t *testing.T) {
	wf := &fakeWorkflow{e2e: time.Second}
	opt := DefaultMeasureOptions()
	opt.Iters = 2
	all, err := MeasureAll(wf, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("series count = %d", len(all))
	}
}

func TestBreakdownClampsParallelExec(t *testing.T) {
	// Summed exec beyond E2E (parallel stages) must not go negative.
	r := RunStats{E2E: time.Second, ExecTime: 5 * time.Second, ColdStart: 100 * time.Millisecond}
	b := r.Breakdown()
	if b.QueueTime != 0 || b.Total() != time.Second {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestColdStartCampaignCount(t *testing.T) {
	wf := &fakeWorkflow{e2e: time.Second}
	samples, err := ColdStartCampaign(wf, AzFunc, 6, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if samples.Len() != 6 {
		t.Fatalf("samples = %d", samples.Len())
	}
}

func TestEnvIsIndependentPerSeed(t *testing.T) {
	a := NewEnv(1)
	b := NewEnv(1)
	if a.K == b.K {
		t.Fatal("environments share a kernel")
	}
	if a.Scratch == nil {
		t.Fatal("scratch not initialized")
	}
}

// TestMeasureHistogramMirror: the Histogram option streams every
// observation into fixed-resolution histograms that must agree with
// the exact sample sets within obs.Hist's documented relative error
// (≤ 1/128 per bucket), and the option must not change the exact
// samples at all.
func TestMeasureHistogramMirror(t *testing.T) {
	wf := &fakeWorkflow{e2e: 800 * time.Millisecond}
	opt := DefaultMeasureOptions()
	opt.Iters = 50

	plain, err := Measure(wf, AWSLambda, opt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.E2EHist.Count() != 0 || plain.ColdHist.Count() != 0 {
		t.Fatal("histograms populated without the Histogram option")
	}

	opt.Histogram = true
	s, err := Measure(wf, AWSLambda, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s.E2EHist.Count() != uint64(opt.Iters) || s.ColdHist.Count() != uint64(opt.Iters) {
		t.Fatalf("hist counts %d/%d, want %d", s.E2EHist.Count(), s.ColdHist.Count(), opt.Iters)
	}
	// The exact series is untouched by mirroring.
	if s.E2E.Len() != plain.E2E.Len() || s.E2E.Median() != plain.E2E.Median() {
		t.Fatal("Histogram option changed the exact samples")
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		exact := float64(s.E2E.Quantile(q))
		approx := float64(s.E2EHist.Quantile(q))
		if exact == 0 {
			continue
		}
		if rel := (approx - exact) / exact; rel > 1.0/128 || rel < -1.0/128 {
			t.Fatalf("q%v: hist %v vs samples %v exceeds 1/128 relative error",
				q, time.Duration(int64(approx)), time.Duration(int64(exact)))
		}
	}
}
