// Cross-checks between the two breakdown estimators: meter/snapshot
// deltas (the PR-1 path) and span-tree sums (this PR). External test
// package so real workloads can be deployed without an import cycle.
package core_test

import (
	"testing"
	"time"

	"statebench/internal/core"
	"statebench/internal/obs"
	"statebench/internal/obs/span"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
	"statebench/internal/workloads/videoproc"
)

func tracedMeasure(t *testing.T, wf core.Workflow, impl core.Impl, opt core.MeasureOptions) *core.Series {
	t.Helper()
	opt.Tracing = true
	s, err := core.Measure(wf, impl, opt)
	if err != nil {
		t.Fatalf("measure %s/%s: %v", wf.Name(), impl, err)
	}
	if s.Trace == nil || len(s.RunTraceIDs) != opt.Iters || s.SpanBreakdowns.Len() != opt.Iters {
		t.Fatalf("tracing plumbing incomplete: trace=%v ids=%d breakdowns=%d",
			s.Trace != nil, len(s.RunTraceIDs), s.SpanBreakdowns.Len())
	}
	return s
}

// within asserts |got-want| <= frac*want.
func within(t *testing.T, what string, got, want time.Duration, frac float64) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > frac*float64(want) {
		t.Fatalf("%s: span-derived %v vs snapshot %v differ by more than %.0f%%", what, got, want, frac*100)
	}
}

// TestSpanExecMatchesSnapshotSerial: for serial (monolith) styles no
// clamping occurs, so the span-tree exec sum and the meter-delta exec
// must agree essentially exactly.
func TestSpanExecMatchesSnapshotSerial(t *testing.T) {
	wf := mltrain.New(mlpipe.Small)
	opt := core.DefaultMeasureOptions()
	opt.Iters = 3
	for _, impl := range []core.Impl{core.AWSLambda, core.AzFunc} {
		s := tracedMeasure(t, wf, impl, opt)
		sb := s.SpanBreakdowns.Mean()
		mb := s.Breakdowns.Mean()
		within(t, string(impl)+" exec", sb.ExecTime, mb.ExecTime, 0.01)
	}
}

// TestSpanExecMatchesMeterFanout: with parallel branches the snapshot
// Breakdown clamps exec to E2E, but the raw meter keeps the cumulative
// sum — exactly what the span tree records. Compare against the meter.
func TestSpanExecMatchesMeterFanout(t *testing.T) {
	wf := videoproc.New(8)
	opt := core.DefaultMeasureOptions()
	opt.Iters = 1
	opt.Warmup = 0
	opt.KeepEnv = true
	for _, impl := range []core.Impl{core.AWSStep, core.AzDorch} {
		s := tracedMeasure(t, wf, impl, opt)
		var meterExec time.Duration
		if impl.Cloud() == core.AWS {
			meterExec = s.Env.AWS.Lambda.TotalMeter().ExecTime
		} else {
			meterExec = s.Env.Azure.Host.TotalMeter().ExecTime
		}
		spanExec := span.TotalByKind(s.Trace.Spans(), 0)[span.KindExec]
		within(t, string(impl)+" cumulative exec", spanExec, meterExec, 0.01)
		// The clamped snapshot path reports at most E2E; the raw sums
		// must dominate it.
		if mb := s.Breakdowns.Mean(); spanExec < mb.ExecTime {
			t.Fatalf("%s: span exec %v below clamped snapshot exec %v", impl, spanExec, mb.ExecTime)
		}
	}
}

// TestFig8QueueShape reproduces the paper's Fig 8 contrast from spans:
// the Az-Queue chain spends tens of seconds queueing between stages
// (long-poll hops on a static container pool), while the durable
// orchestrator's queue time stays around a second. The span-derived
// queue must also agree with the snapshot path, where "cold" for
// Az-Queue is itself a queue wait (first-hop delay) and is folded in.
func TestFig8QueueShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large-dataset campaign")
	}
	wf := mltrain.New(mlpipe.Large)
	opt := core.DefaultMeasureOptions()
	opt.Iters = 2

	sq := tracedMeasure(t, wf, core.AzQueue, opt)
	sd := tracedMeasure(t, wf, core.AzDorch, opt)

	qQueue := sq.SpanBreakdowns.Mean().QueueTime
	dQueue := sd.SpanBreakdowns.Mean().QueueTime
	if qQueue < 10*time.Second {
		t.Fatalf("Az-Queue span queue = %v, want tens of seconds (Fig 8)", qQueue)
	}
	if dQueue > 5*time.Second {
		t.Fatalf("Az-Dorch span queue = %v, want a few seconds at most (Fig 8)", dQueue)
	}
	if qQueue < 4*dQueue {
		t.Fatalf("Fig 8 contrast lost: Az-Queue %v vs Az-Dorch %v", qQueue, dQueue)
	}

	// Cross-check vs snapshot: Az-Queue's snapshot "cold" is the
	// first-hop wait, so the comparable quantity is cold+queue.
	mq := sq.Breakdowns.Mean()
	within(t, "Az-Queue queue", qQueue, mq.ColdStart+mq.QueueTime, 0.30)
}

// TestFig13ColdFanout checks the Fig 13 cold fan-out from spans: a
// fresh video deployment records cold-start spans, and their sum
// dominates the snapshot path's single first-task delay.
func TestFig13ColdFanout(t *testing.T) {
	wf := videoproc.New(20)
	opt := core.DefaultMeasureOptions()
	opt.Iters = 1
	opt.Warmup = 0
	for _, impl := range []core.Impl{core.AWSStep, core.AzDorch} {
		s := tracedMeasure(t, wf, impl, opt)
		spanCold := s.SpanBreakdowns.Mean().ColdStart
		snapCold := s.Breakdowns.Mean().ColdStart
		if spanCold <= 0 {
			t.Fatalf("%s: no cold spans on a fresh deployment", impl)
		}
		if spanCold < snapCold {
			t.Fatalf("%s: span cold %v below snapshot first-delay %v", impl, spanCold, snapCold)
		}
	}
}

// TestTracingDoesNotChangeResults is the determinism contract at the
// Measure level: identical samples with tracing on and off.
func TestTracingDoesNotChangeResults(t *testing.T) {
	wf := mltrain.New(mlpipe.Small)
	opt := core.DefaultMeasureOptions()
	opt.Iters = 3
	for _, impl := range []core.Impl{core.AWSStep, core.AzQueue, core.AzDorch} {
		plain, err := core.Measure(wf, impl, opt)
		if err != nil {
			t.Fatal(err)
		}
		traced := tracedMeasure(t, wf, impl, opt)
		for q := 1; q <= 9; q++ {
			f := float64(q) / 10
			if a, b := plain.E2E.Quantile(f), traced.E2E.Quantile(f); a != b {
				t.Fatalf("%s: E2E q%.1f differs with tracing: %v vs %v", impl, f, a, b)
			}
		}
		if plain.MeanBill != traced.MeanBill {
			t.Fatalf("%s: bill differs with tracing", impl)
		}
	}
}

// TestRunSpansCoverE2E: each run's root span duration equals the run's
// end-to-end wall clock bracket (it wraps the Invoke call).
func TestRunSpansCoverE2E(t *testing.T) {
	wf := mltrain.New(mlpipe.Small)
	opt := core.DefaultMeasureOptions()
	opt.Iters = 2
	s := tracedMeasure(t, wf, core.AWSStep, opt)
	var runSpans []span.Span
	for _, sp := range s.Trace.Spans() {
		if sp.Kind == span.KindRun {
			runSpans = append(runSpans, sp)
		}
	}
	if len(runSpans) != opt.Iters {
		t.Fatalf("run spans = %d, want %d", len(runSpans), opt.Iters)
	}
	var e2e obs.Samples
	e2e = s.E2E
	for i, rs := range runSpans {
		if rs.TraceID != s.RunTraceIDs[i] {
			t.Fatalf("run span %d trace %d != recorded %d", i, rs.TraceID, s.RunTraceIDs[i])
		}
		// Root span brackets the Invoke; E2E is measured inside it.
		if rs.Duration() < e2e.Quantile(0) {
			t.Fatalf("run span %d (%v) shorter than min E2E %v", i, rs.Duration(), e2e.Quantile(0))
		}
	}
}
