package core

import (
	"fmt"
	"time"

	"statebench/internal/chaos"
	"statebench/internal/obs"
	"statebench/internal/obs/metrics"
	"statebench/internal/obs/span"
	"statebench/internal/obs/tseries"
	"statebench/internal/parallel"
	"statebench/internal/payload"
	"statebench/internal/pricing"
	"statebench/internal/sim"
)

// Series is the measured result of running one workflow style many
// times — the unit from which every figure in the paper is built.
type Series struct {
	Workflow string
	Impl     Impl
	Iters    int
	Errors   int

	// E2E and Cold hold per-run latency and cold-start samples.
	E2E  obs.Samples
	Cold obs.Samples
	// E2EHist and ColdHist are streaming mirrors of E2E/Cold,
	// populated only when MeasureOptions.Histogram is set — the bridge
	// between closed-loop campaigns and the open-loop traffic
	// reports, and the in-tree cross-check that the fixed-resolution
	// histograms track the exact sample sets within their documented
	// error bound.
	E2EHist  obs.Hist
	ColdHist obs.Hist
	// Breakdowns holds per-run queue/exec decompositions.
	Breakdowns obs.BreakdownSet

	// MeanBill is the mean per-run cost; MeanGBs the mean billed GB-s;
	// MeanTxns the mean stateful transactions/transitions per run.
	MeanBill pricing.Bill
	MeanGBs  float64
	MeanTxns float64

	// Env is the environment the series ran in (for experiment-specific
	// drill-downs such as Fig 14's scheduling delays). It is populated
	// only when MeasureOptions.KeepEnv is set; otherwise the whole
	// simulated cloud is released as soon as the campaign ends.
	Env *Env

	// SpanBreakdowns holds per-run decompositions derived from the span
	// tree instead of meter snapshots — the cross-check for Breakdowns.
	// Populated only when MeasureOptions.Tracing is set.
	SpanBreakdowns obs.BreakdownSet
	// Trace is the campaign's tracer (Chrome-trace export material).
	// Populated only when MeasureOptions.Tracing is set.
	Trace *span.Tracer
	// RunTraceIDs maps measured iteration -> its root trace ID in Trace.
	RunTraceIDs []uint64

	// SuccessRate is the fraction of measured iterations whose workflow
	// run reported no error (1.0 on a fault-free campaign).
	SuccessRate float64
	// Faults aggregates the campaign's injected faults and recovery
	// activity. Zero unless MeasureOptions.Chaos was set.
	Faults chaos.Stats

	// Payload is the campaign's payload-cache activity, attributed with
	// first-touch semantics (see payload.Engine.Scope): misses count the
	// distinct compute keys this campaign touched, hits the repeat
	// lookups — both properties of the workload alone, so the snapshot
	// is byte-identical whether the campaign ran alone or raced other
	// campaigns on a shared engine. Zero when caching is disabled.
	Payload payload.Stats

	// Timeline is the campaign's windowed telemetry (arrivals,
	// completions, cold starts, scheduling delays, faults, occupancy
	// gauges per virtual-time window). Populated only when
	// MeasureOptions.Timeline is set; the same series has then also been
	// merged into the shared collector.
	Timeline *tseries.Series
}

// MeasureOptions tunes a measurement campaign.
type MeasureOptions struct {
	// Iters is the number of measured invocations (the paper uses 100+).
	Iters int
	// Gap is the virtual time between invocations; long enough to let
	// queues quiesce, short enough to stay warm (like the paper's
	// back-to-back iterations).
	Gap time.Duration
	// Warmup runs (unmeasured) before the campaign; the paper's
	// latency numbers are warm-path, cold starts being measured
	// separately (Fig 10).
	Warmup int
	// Seed for the environment.
	Seed uint64
	// Input builds the per-iteration input (nil means nil input).
	Input func(iter int) []byte
	// Workers bounds how many campaigns MeasureAll runs concurrently
	// (0 = GOMAXPROCS, 1 = strictly sequential). Each campaign gets its
	// own Env, so the setting changes wall-clock only, never results.
	Workers int
	// KeepEnv retains the simulated environment on the returned Series
	// for experiment-specific drill-downs (Fig 14's scheduling delays,
	// Table III's finish times). Off by default: an Env pins the entire
	// simulated cloud — task hubs, blobs, queues, history tables — and
	// most callers only need the samples.
	KeepEnv bool
	// Tracing enables the span tracer on the campaign's Env: each
	// measured iteration runs under a root span, and the Series carries
	// the tracer plus span-derived breakdowns. Results (latency, cost,
	// report output) are byte-identical with tracing on or off.
	Tracing bool
	// Metrics, when non-nil, receives counter/histogram series from the
	// campaign's instrumentation points (implies Tracing's wiring). The
	// registry may be shared across concurrent campaigns; all writes are
	// commutative, so contents are deterministic at any worker count.
	Metrics *metrics.Registry
	// Chaos, when non-nil, wires a deterministic fault injector for the
	// given plan through every platform service of the campaign's Env.
	// Fault schedules derive from Seed and the plan alone, so results
	// are byte-identical across runs and worker counts. Nil is the
	// zero-overhead fast path: no injector is constructed and no
	// simulated result changes.
	Chaos *chaos.Plan
	// Histogram additionally streams every E2E/cold observation into
	// the Series' fixed-resolution histograms (E2EHist/ColdHist).
	// Off by default: closed-loop campaigns retain exact samples, so
	// the histograms are a cross-check and a bridge to the open-loop
	// traffic reports, not a replacement. Never changes measured
	// output.
	Histogram bool
	// Timeline, when non-nil, enables windowed telemetry: the campaign
	// records into a private per-campaign tseries.Series (at the
	// collector's window interval) and merges it into the collector when
	// the campaign finishes. Implies Tracing's wiring — windowed
	// counters derive from the span stream — plus chaos-fault and
	// warm-pool instrumentation. Merging is commutative, so collector
	// contents are byte-identical at any Workers count. Never changes
	// measured output.
	Timeline *tseries.Collector
	// PayloadCache is the memoization engine for real payload compute
	// (see internal/payload). Nil keeps the Env default — the
	// process-global payload.Shared engine; experiment suites pass a
	// per-run engine so cold behaviour is uniform, and
	// payload.Disabled() turns memoization off entirely. Cached results
	// are byte-identical to fresh recomputes, so this option never
	// changes measured output.
	PayloadCache *payload.Engine
}

// DefaultMeasureOptions returns the paper-like defaults.
func DefaultMeasureOptions() MeasureOptions {
	return MeasureOptions{Iters: 100, Gap: 30 * time.Second, Warmup: 1, Seed: 42}
}

// Measure deploys wf in the given style into a fresh environment and
// invokes it opt.Iters times, collecting latency, breakdown, and cost
// series.
func Measure(wf Workflow, impl Impl, opt MeasureOptions) (*Series, error) {
	if !SupportsImpl(wf, impl) {
		return nil, &UnsupportedImplError{Workflow: wf.Name(), Impl: impl}
	}
	if opt.Iters <= 0 {
		opt.Iters = 1
	}
	env := NewEnv(opt.Seed)
	if opt.PayloadCache != nil {
		env.Payload = opt.PayloadCache
	}
	// Scope the engine so this campaign's cache activity is observable
	// on the Series without disturbing the root engine's suite-level
	// counters (storage and single-flight stay shared).
	scope := env.Payload.Scope()
	env.Payload = scope
	var tl *tseries.Series
	if opt.Timeline != nil {
		tl = tseries.New(opt.Timeline.Interval())
		env.EnableTimeline(tl)
	}
	var tr *span.Tracer
	if opt.Tracing || opt.Metrics != nil || tl != nil {
		tr = env.EnableTracing()
		tr.Metrics = opt.Metrics
		tr.Windows = tl
	}
	inj := env.EnableChaos(opt.Chaos)
	if inj != nil {
		inj.Tracer = tr
		inj.Metrics = opt.Metrics
		inj.Timeline = tl
	}
	be := env.BackendFor(impl)
	if be == nil {
		return nil, fmt.Errorf("core: style %s has no registered provider", impl)
	}
	stateful := impl.Stateful()
	book := env.BookFor(impl)
	dep, err := wf.Deploy(env, impl)
	if err != nil {
		return nil, fmt.Errorf("core: deploy %s/%s: %w", wf.Name(), impl, err)
	}
	s := &Series{Workflow: wf.Name(), Impl: impl, Iters: opt.Iters}
	if opt.KeepEnv {
		s.Env = env
	}
	if opt.Tracing {
		s.Trace = tr
	}

	var bill pricing.Bill
	var gbs, txns float64
	var campaignErr error

	env.K.Spawn("measure", func(p *sim.Proc) {
		defer env.Stop()
		for w := 0; w < opt.Warmup; w++ {
			input := []byte(nil)
			if opt.Input != nil {
				input = opt.Input(-1 - w)
			}
			if _, err := dep.Runner.Invoke(p, input); err != nil {
				campaignErr = fmt.Errorf("core: warmup: %w", err)
				return
			}
			p.Sleep(opt.Gap)
		}
		for i := 0; i < opt.Iters; i++ {
			input := []byte(nil)
			if opt.Input != nil {
				input = opt.Input(i)
			}
			// Root span per measured run: every platform span of this
			// iteration hangs off it via p.TraceCtx propagation. The name
			// stays iteration-free to bound metric cardinality; the
			// iteration rides in an attribute.
			mark := tr.Len()
			runSpan := tr.StartTrace(p.Now(), span.KindRun, wf.Name()+"/"+string(impl))
			p.TraceCtx = runSpan.Context()
			before := be.Usage(stateful)
			stats, err := dep.Runner.Invoke(p, input)
			if err != nil {
				campaignErr = fmt.Errorf("core: iteration %d: %w", i, err)
				return
			}
			delta := be.Usage(stateful).Sub(before)
			if runSpan.Live() {
				runSpan.End(p.Now(), span.A("iter", fmt.Sprintf("%d", i)))
				p.TraceCtx = sim.TraceContext{}
			}

			if stats.Err != nil {
				s.Errors++
			}
			s.E2E.Add(stats.E2E)
			s.Cold.Add(stats.ColdStart)
			if opt.Histogram {
				s.E2EHist.Record(stats.E2E)
				s.ColdHist.Record(stats.ColdStart)
			}
			if stats.ExecTime == 0 {
				stats.ExecTime = delta.Exec
			}
			s.Breakdowns.Add(stats.Breakdown())
			if opt.Tracing {
				id := runSpan.Context().TraceID
				s.RunTraceIDs = append(s.RunTraceIDs, id)
				s.SpanBreakdowns.Add(span.BreakdownOf(tr.Since(mark), id))
			}

			bill = bill.Add(book.Bill(delta))
			gbs += delta.GBs
			txns += float64(delta.AllTxns)
			p.Sleep(opt.Gap)
		}
	})
	env.K.Run()
	if campaignErr != nil {
		return nil, campaignErr
	}
	n := float64(opt.Iters)
	s.MeanBill = bill.Scale(1 / n)
	s.MeanGBs = gbs / n
	s.MeanTxns = txns / n
	s.SuccessRate = float64(opt.Iters-s.Errors) / n
	s.Faults = inj.Stats()
	s.Payload = scope.Stats()
	if tl != nil {
		s.Timeline = tl
		opt.Timeline.Merge(tl)
		opt.Timeline.AddDone(0)
	}
	return s, nil
}

// ColdStartCampaign reproduces the paper's cold-start methodology: a
// fresh deployment receives one request per hour for the given number
// of hours (the paper: 4 days), and each request's cold-start delay is
// recorded. Keep-alive windows are far below an hour, so every request
// lands cold.
func ColdStartCampaign(wf Workflow, impl Impl, hours int, seed uint64, input func(iter int) []byte) (*obs.Samples, error) {
	return ColdStartCampaignCached(wf, impl, hours, seed, input, nil)
}

// ColdStartCampaignCached is ColdStartCampaign with an explicit
// payload engine (nil keeps the Env default), so suite runs share one
// engine across warm and cold campaigns.
func ColdStartCampaignCached(wf Workflow, impl Impl, hours int, seed uint64, input func(iter int) []byte, cache *payload.Engine) (*obs.Samples, error) {
	if !SupportsImpl(wf, impl) {
		return nil, &UnsupportedImplError{Workflow: wf.Name(), Impl: impl}
	}
	env := NewEnv(seed)
	if cache != nil {
		env.Payload = cache
	}
	dep, err := wf.Deploy(env, impl)
	if err != nil {
		return nil, fmt.Errorf("core: deploy %s/%s: %w", wf.Name(), impl, err)
	}
	var samples obs.Samples
	var campaignErr error
	env.K.Spawn("coldstart-campaign", func(p *sim.Proc) {
		defer env.Stop()
		for h := 0; h < hours; h++ {
			in := []byte(nil)
			if input != nil {
				in = input(h)
			}
			stats, err := dep.Runner.Invoke(p, in)
			if err != nil {
				campaignErr = err
				return
			}
			samples.Add(stats.ColdStart)
			p.Sleep(time.Hour)
		}
	})
	env.K.Run()
	if campaignErr != nil {
		return nil, campaignErr
	}
	return &samples, nil
}

// MeasureAll runs Measure for every style the workflow supports and
// returns the series keyed by style. The per-style campaigns are fully
// independent (each deploys into a fresh Env), so they fan out across
// opt.Workers goroutines; results are identical at any worker count.
func MeasureAll(wf Workflow, opt MeasureOptions) (map[Impl]*Series, error) {
	impls := wf.Impls()
	series, err := parallel.Map(opt.Workers, len(impls), func(i int) (*Series, error) {
		return Measure(wf, impls[i], opt)
	})
	if err != nil {
		return nil, err
	}
	out := make(map[Impl]*Series, len(impls))
	for i, impl := range impls {
		out[impl] = series[i]
	}
	return out, nil
}
