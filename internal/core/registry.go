package core

import (
	"fmt"
	"sort"

	"statebench/internal/aws"
	"statebench/internal/azure"
	"statebench/internal/chaos"
	"statebench/internal/obs/span"
	"statebench/internal/obs/tseries"
	"statebench/internal/platform"
	"statebench/internal/pricing"
)

// This file is the provider registry: the one place that knows which
// clouds exist. An implementation style (Impl) is registered data — a
// StyleInfo row under a ProviderSpec — not a compile-time enum case,
// so adding a provider means calling RegisterProvider from the new
// package's init, never editing switches in core, pricing,
// experiments, or cmd. The AWS and Azure providers of the paper are
// registered below; internal/gcp registers the third.

// Backend is one provider's simulated cloud inside an Env. The
// concrete types (*aws.Cloud, *azure.Cloud, *gcp.Cloud) satisfy it
// structurally, so provider packages do not import core.
type Backend interface {
	// SetTracer enables span emission on every service of the backend.
	SetTracer(tr *span.Tracer)
	// SetChaos enables fault injection on every service of the backend.
	SetChaos(inj *chaos.Injector)
	// SetTimeline enables per-window telemetry gauges (warm-pool and
	// scheduler-backlog occupancy) on every service of the backend.
	SetTimeline(s *tseries.Series)
	// Usage reports cumulative billable consumption. stateful selects
	// the provider's stateful billing mode (e.g. Azure deployments
	// without the durable extension are not billed for task-hub
	// storage traffic).
	Usage(stateful bool) pricing.Usage
	// Stop halts background listeners so a finished kernel can drain.
	Stop()
}

// StyleInfo describes one registered implementation style — the
// registry's replacement for the per-Impl switch statements.
type StyleInfo struct {
	Impl Impl
	// Kind is the provider hosting the style.
	Kind CloudKind
	// Stateful is Table II's "Stateful" column: whether the style uses
	// a platform stateful extension (and is billed for it).
	Stateful bool
	// Description is the Table II description text.
	Description string
}

// ProviderSpec declares one provider: its styles, how to construct its
// simulated cloud inside an Env, and its default price book.
type ProviderSpec struct {
	// Kind is the provider's identity; must be unique.
	Kind CloudKind
	// Name is the display name ("AWS", "Azure", "GCP").
	Name string
	// Styles lists the implementation styles the provider hosts.
	Styles []StyleInfo
	// NewBackend constructs the provider's cloud on the Env's kernel.
	// Called lazily on first use; the Env applies its tracer and chaos
	// injector to the fresh backend.
	NewBackend func(e *Env) Backend
	// DefaultBook returns the provider's price book. The paper's two
	// providers are overridden by the Env's live AWSPrices/AzurePrices
	// fields (which ablations perturb); see Env.BookFor.
	DefaultBook func() pricing.Book
	// BillsConfiguredMem reports whether the provider bills compute by
	// the configured memory tier (AWS Lambda, GCP Cloud Functions) as
	// opposed to consumed memory (Azure consumption plan). Registry
	// data, not program text: the AWS Step Functions ASL omits Lambda
	// memory even though it shapes the bill, so optimizers must ask
	// the provider, not the lowered program, whether a memory knob is
	// cost-relevant.
	BillsConfiguredMem bool
	// Traffic returns the provider's open-loop traffic calibration
	// (see internal/traffic). Optional: providers without a profile
	// simply do not appear in the traffic experiment.
	Traffic func() platform.TrafficProfile
}

var (
	providerRegistry = map[CloudKind]*ProviderSpec{}
	styleRegistry    = map[Impl]StyleInfo{}
	// providerOrder preserves registration order (package-init order),
	// which is deterministic, for stable enumeration.
	providerOrder []CloudKind
)

// RegisterProvider adds a provider to the registry. It panics on a
// duplicate kind or style — registration is package-init-time wiring,
// so a conflict is a programming error.
func RegisterProvider(spec ProviderSpec) {
	if _, dup := providerRegistry[spec.Kind]; dup {
		panic(fmt.Sprintf("core: provider %s registered twice", spec.Name))
	}
	if spec.NewBackend == nil || spec.DefaultBook == nil {
		panic(fmt.Sprintf("core: provider %s needs NewBackend and DefaultBook", spec.Name))
	}
	s := spec
	for i := range s.Styles {
		s.Styles[i].Kind = s.Kind
		impl := s.Styles[i].Impl
		if _, dup := styleRegistry[impl]; dup {
			panic(fmt.Sprintf("core: style %s registered twice", impl))
		}
		styleRegistry[impl] = s.Styles[i]
	}
	providerRegistry[s.Kind] = &s
	providerOrder = append(providerOrder, s.Kind)
}

// Provider returns the registered spec for kind.
func Provider(kind CloudKind) (*ProviderSpec, bool) {
	spec, ok := providerRegistry[kind]
	return spec, ok
}

// Providers lists registered providers in registration order.
func Providers() []*ProviderSpec {
	out := make([]*ProviderSpec, 0, len(providerOrder))
	for _, kind := range providerOrder {
		out = append(out, providerRegistry[kind])
	}
	return out
}

// StyleOf returns the registry row for an implementation style.
func StyleOf(i Impl) (StyleInfo, bool) {
	info, ok := styleRegistry[i]
	return info, ok
}

// RegisteredImpls lists every style of every registered provider, in
// provider registration order. The paper's figures iterate AllImpls
// (the six Table II styles) instead, so third-provider styles never
// leak into paper output.
func RegisteredImpls() []Impl {
	var out []Impl
	for _, kind := range providerOrder {
		for _, st := range providerRegistry[kind].Styles {
			out = append(out, st.Impl)
		}
	}
	return out
}

// sortedBackendKinds returns the kinds of the Env's constructed
// backends in ascending order, for deterministic iteration.
func sortedBackendKinds(backends map[CloudKind]Backend) []CloudKind {
	kinds := make([]CloudKind, 0, len(backends))
	for kind := range backends {
		kinds = append(kinds, kind)
	}
	sort.Slice(kinds, func(a, b int) bool { return kinds[a] < kinds[b] })
	return kinds
}

func init() {
	RegisterProvider(ProviderSpec{
		Kind: AWS,
		Name: "AWS",
		Styles: []StyleInfo{
			{Impl: AWSLambda, Description: "One stateless Lambda function."},
			{Impl: AWSStep, Stateful: true, Description: "Workflow implementation using AWS Step Functions, calling AWS Lambda functions on each state."},
		},
		NewBackend:         func(e *Env) Backend { return aws.New(e.K, platform.DefaultAWS()) },
		DefaultBook:        func() pricing.Book { return pricing.DefaultAWS() },
		Traffic:            func() platform.TrafficProfile { return platform.DefaultAWS().Traffic() },
		BillsConfiguredMem: true,
	})
	RegisterProvider(ProviderSpec{
		Kind: Azure,
		Name: "Azure",
		Styles: []StyleInfo{
			{Impl: AzFunc, Description: "One stateless Azure function."},
			{Impl: AzQueue, Description: "Isolated functions connecting through Azure queues."},
			{Impl: AzDorch, Stateful: true, Description: "Workflow implemented using Azure Durable orchestrators, calling isolated functions through call_activity."},
			{Impl: AzDent, Stateful: true, Description: "Workflow implemented using Azure Durable orchestrators, calling stateful entities through call_entity."},
		},
		NewBackend:  func(e *Env) Backend { return azure.New(e.K, platform.DefaultAzure()) },
		DefaultBook: func() pricing.Book { return pricing.DefaultAzure() },
		Traffic:     func() platform.TrafficProfile { return platform.DefaultAzure().Traffic() },
	})
}
