package core

import (
	"time"

	"statebench/internal/aws"
	"statebench/internal/azure"
	"statebench/internal/chaos"
	"statebench/internal/obs"
	"statebench/internal/obs/span"
	"statebench/internal/obs/tseries"
	"statebench/internal/payload"
	"statebench/internal/platform"
	"statebench/internal/pricing"
	"statebench/internal/sim"
)

// Env is one fresh simulated deployment: a kernel plus both clouds,
// ready for a Workflow to deploy into.
//
// Concurrency contract: an Env wraps a single sim.Kernel and inherits
// its one-goroutine discipline — everything reachable from an Env
// (clouds, task hubs, blobs, queues, Scratch) must be touched only by
// the host goroutine that runs its kernel. Envs are never shared;
// parallel campaigns (internal/parallel) each build their own Env from
// their own seed, which is what makes fan-out deterministic and
// lock-free.
type Env struct {
	K *sim.Kernel
	// AWS and Azure are the paper's two clouds, constructed eagerly
	// with the Env (workload deployment code reaches into their typed
	// services). They are also the first two entries of the backend
	// map; additional registered providers are constructed lazily by
	// Backend on first use.
	AWS   *aws.Cloud
	Azure *azure.Cloud
	Seed  uint64

	AWSPrices   pricing.AWSPrices
	AzurePrices pricing.AzurePrices

	// backends holds each provider's simulated cloud, keyed by kind.
	backends map[CloudKind]Backend

	// Scratch lets workloads expose experiment-specific measurements
	// (e.g. per-worker finish times) to the experiment drivers.
	Scratch map[string]any

	// Trace is non-nil once EnableTracing has been called; all platform
	// services of this Env then emit spans into it.
	Trace *span.Tracer

	// Chaos is non-nil once EnableChaos has been called; all platform
	// services of this Env then consult it for fault injection.
	Chaos *chaos.Injector

	// Timeline is non-nil once EnableTimeline has been called; platform
	// services of this Env then record per-window occupancy gauges into
	// it (counters ride in via the span tracer's window sink and the
	// chaos injector).
	Timeline *tseries.Series

	// Payload is the memoization engine workload deployments use for
	// real payload compute (mlpipe training, video detection). Defaults
	// to the process-global payload.Shared; campaigns run through
	// Measure inherit MeasureOptions.PayloadCache instead, so one suite
	// run shares one engine across impls, providers, and repetitions.
	// Cached results are byte-identical to fresh recomputes, so the
	// engine never changes simulated output.
	Payload *payload.Engine
}

// NewEnv builds an environment with default calibration parameters.
func NewEnv(seed uint64) *Env {
	return NewEnvWithParams(seed, platform.DefaultAWS(), platform.DefaultAzure())
}

// NewEnvWithParams builds an environment with explicit platform
// parameters (used by ablation experiments).
func NewEnvWithParams(seed uint64, ap platform.AWSParams, zp platform.AzureParams) *Env {
	k := sim.NewKernel(seed)
	e := &Env{
		K:           k,
		AWS:         aws.New(k, ap),
		Azure:       azure.New(k, zp),
		Seed:        seed,
		AWSPrices:   pricing.DefaultAWS(),
		AzurePrices: pricing.DefaultAzure(),
		Scratch:     make(map[string]any),
		Payload:     payload.Shared(),
	}
	e.backends = map[CloudKind]Backend{AWS: e.AWS, Azure: e.Azure}
	return e
}

// Backend returns the simulated cloud for a registered provider,
// constructing it on first use. Lazy construction keeps extra
// providers free for AWS/Azure-only campaigns: a backend that is
// never touched allocates nothing and — because every RNG stream is
// derived from its name, not from draw order — cannot perturb another
// provider's variates. Returns nil for an unregistered kind.
func (e *Env) Backend(kind CloudKind) Backend {
	if be, ok := e.backends[kind]; ok {
		return be
	}
	spec, ok := providerRegistry[kind]
	if !ok {
		return nil
	}
	be := spec.NewBackend(e)
	if e.Trace != nil {
		be.SetTracer(e.Trace)
	}
	if e.Chaos != nil {
		be.SetChaos(e.Chaos)
	}
	if e.Timeline != nil {
		be.SetTimeline(e.Timeline)
	}
	e.backends[kind] = be
	return be
}

// BackendFor returns the backend hosting an implementation style.
func (e *Env) BackendFor(impl Impl) Backend { return e.Backend(impl.Cloud()) }

// BookFor returns the price book for an implementation style. The
// paper's two providers read the Env's live AWSPrices/AzurePrices
// fields (ablation experiments perturb those); other providers use
// their registered default book.
func (e *Env) BookFor(impl Impl) pricing.Book {
	kind := impl.Cloud()
	if kind == AWS {
		return e.AWSPrices
	}
	if kind == Azure {
		return e.AzurePrices
	}
	if spec, ok := providerRegistry[kind]; ok {
		return spec.DefaultBook()
	}
	return pricing.AzurePrices{}
}

// UsageFor reports the cumulative billable consumption of the backend
// hosting impl, in impl's stateful billing mode.
func (e *Env) UsageFor(impl Impl) pricing.Usage {
	return e.BackendFor(impl).Usage(impl.Stateful())
}

// Stop terminates long-running platform listeners on every constructed
// backend so the kernel drains.
func (e *Env) Stop() {
	for _, kind := range sortedBackendKinds(e.backends) {
		e.backends[kind].Stop()
	}
}

// EnableTracing wires a span tracer through every platform service of
// this Env (idempotent). Call before deploying workloads so queues
// created during deployment are covered too. Tracing is pure
// bookkeeping — no sleeps, no RNG draws — so enabling it does not
// change any simulated result. Backends constructed later inherit the
// tracer at construction.
func (e *Env) EnableTracing() *span.Tracer {
	if e.Trace == nil {
		e.Trace = span.New()
		for _, kind := range sortedBackendKinds(e.backends) {
			e.backends[kind].SetTracer(e.Trace)
		}
	}
	return e.Trace
}

// EnableChaos wires a fault injector for plan through every platform
// service of this Env (idempotent; a nil plan is the disabled fast
// path and leaves everything untouched). Call before deploying
// workloads so queues created during deployment are covered too.
func (e *Env) EnableChaos(plan *chaos.Plan) *chaos.Injector {
	if plan == nil {
		return e.Chaos
	}
	if e.Chaos == nil {
		e.Chaos = chaos.NewInjector(e.K, plan)
		for _, kind := range sortedBackendKinds(e.backends) {
			e.backends[kind].SetChaos(e.Chaos)
		}
	}
	return e.Chaos
}

// EnableTimeline wires windowed telemetry through every platform
// service of this Env (idempotent; a nil series leaves everything
// untouched). Call before deploying workloads. Like tracing, windowed
// telemetry is pure observation — no events, no RNG draws — so
// enabling it does not change any simulated result. Backends
// constructed later inherit the series at construction.
func (e *Env) EnableTimeline(s *tseries.Series) *tseries.Series {
	if s == nil {
		return e.Timeline
	}
	if e.Timeline == nil {
		e.Timeline = s
		for _, kind := range sortedBackendKinds(e.backends) {
			e.backends[kind].SetTimeline(s)
		}
	}
	return e.Timeline
}

// Stage opens an application-level stage span (ML pipeline step, video
// split/detect/merge) under p's current context. Returns a no-op handle
// when tracing is disabled, so workload code can call it unconditionally.
func (e *Env) Stage(p *sim.Proc, name string) span.Active {
	return e.Trace.Start(p.Now(), span.KindStage, name, p.TraceCtx)
}

// RunStats is the outcome of one workflow invocation.
type RunStats struct {
	// E2E is the paper's end-to-end latency for this style (state
	// machine Start→End on AWS; orchestrator Running→Completed on
	// durable Azure; trigger→last-function elsewhere).
	E2E time.Duration
	// ColdStart is the style's cold-start metric (Fig 10 methodology).
	ColdStart time.Duration
	// ExecTime is the summed function execution time during the run.
	ExecTime time.Duration
	// Output is the workflow's result payload (workload-specific).
	Output []byte
	Err    error
}

// Breakdown derives the paper's queue-vs-execution decomposition: the
// time not spent executing or cold-starting is queueing/transfer.
func (r RunStats) Breakdown() obs.Breakdown {
	queue := r.E2E - r.ExecTime - r.ColdStart
	if queue < 0 {
		// Parallel stages can make summed exec exceed E2E; attribute
		// everything to execution then.
		return obs.Breakdown{ColdStart: r.ColdStart, ExecTime: r.E2E - r.ColdStart}
	}
	return obs.Breakdown{ColdStart: r.ColdStart, QueueTime: queue, ExecTime: r.ExecTime}
}

// Runner executes a deployed workflow.
type Runner interface {
	// Invoke runs the workflow once from process p with an opaque
	// workload-specific input.
	Invoke(p *sim.Proc, input []byte) (RunStats, error)
}

// Deployment is a deployed workflow plus its Table II metadata.
type Deployment struct {
	Runner Runner
	// FuncCount is the "# of Func" Table II column.
	FuncCount int
	// CodeSizeMB is the deployment-package size column.
	CodeSizeMB float64
}

// Workflow is a workload that can deploy itself in multiple styles.
type Workflow interface {
	// Name identifies the workload (e.g. "ml-training").
	Name() string
	// Impls lists the paper's supported styles; every figure and table
	// iterates this list, so it must contain Table II styles only.
	Impls() []Impl
	// Deploy installs the workflow into env using style impl.
	Deploy(env *Env, impl Impl) (*Deployment, error)
}

// ExtendedWorkflow is implemented by workloads that also deploy on
// providers beyond the paper's two. The extra styles are measurable
// through Measure/ColdStartCampaign but excluded from Impls so paper
// output never changes as providers are registered.
type ExtendedWorkflow interface {
	Workflow
	// ExtraImpls lists additional (non-paper) deployable styles.
	ExtraImpls() []Impl
}

// SupportsImpl reports whether wf deploys impl, including any
// ExtendedWorkflow extra styles.
func SupportsImpl(wf Workflow, impl Impl) bool {
	for _, i := range wf.Impls() {
		if i == impl {
			return true
		}
	}
	if ext, ok := wf.(ExtendedWorkflow); ok {
		for _, i := range ext.ExtraImpls() {
			if i == impl {
				return true
			}
		}
	}
	return false
}
