package core

import (
	"time"

	"statebench/internal/aws"
	"statebench/internal/azure"
	"statebench/internal/chaos"
	"statebench/internal/obs"
	"statebench/internal/obs/span"
	"statebench/internal/platform"
	"statebench/internal/pricing"
	"statebench/internal/sim"
)

// Env is one fresh simulated deployment: a kernel plus both clouds,
// ready for a Workflow to deploy into.
//
// Concurrency contract: an Env wraps a single sim.Kernel and inherits
// its one-goroutine discipline — everything reachable from an Env
// (clouds, task hubs, blobs, queues, Scratch) must be touched only by
// the host goroutine that runs its kernel. Envs are never shared;
// parallel campaigns (internal/parallel) each build their own Env from
// their own seed, which is what makes fan-out deterministic and
// lock-free.
type Env struct {
	K     *sim.Kernel
	AWS   *aws.Cloud
	Azure *azure.Cloud
	Seed  uint64

	AWSPrices   pricing.AWSPrices
	AzurePrices pricing.AzurePrices

	// Scratch lets workloads expose experiment-specific measurements
	// (e.g. per-worker finish times) to the experiment drivers.
	Scratch map[string]any

	// Trace is non-nil once EnableTracing has been called; all platform
	// services of this Env then emit spans into it.
	Trace *span.Tracer

	// Chaos is non-nil once EnableChaos has been called; all platform
	// services of this Env then consult it for fault injection.
	Chaos *chaos.Injector
}

// NewEnv builds an environment with default calibration parameters.
func NewEnv(seed uint64) *Env {
	return NewEnvWithParams(seed, platform.DefaultAWS(), platform.DefaultAzure())
}

// NewEnvWithParams builds an environment with explicit platform
// parameters (used by ablation experiments).
func NewEnvWithParams(seed uint64, ap platform.AWSParams, zp platform.AzureParams) *Env {
	k := sim.NewKernel(seed)
	return &Env{
		K:           k,
		AWS:         aws.New(k, ap),
		Azure:       azure.New(k, zp),
		Seed:        seed,
		AWSPrices:   pricing.DefaultAWS(),
		AzurePrices: pricing.DefaultAzure(),
		Scratch:     make(map[string]any),
	}
}

// Stop terminates long-running platform listeners so the kernel drains.
func (e *Env) Stop() { e.Azure.Stop() }

// EnableTracing wires a span tracer through every platform service of
// this Env (idempotent). Call before deploying workloads so queues
// created during deployment are covered too. Tracing is pure
// bookkeeping — no sleeps, no RNG draws — so enabling it does not
// change any simulated result.
func (e *Env) EnableTracing() *span.Tracer {
	if e.Trace == nil {
		e.Trace = span.New()
		e.AWS.SetTracer(e.Trace)
		e.Azure.SetTracer(e.Trace)
	}
	return e.Trace
}

// EnableChaos wires a fault injector for plan through every platform
// service of this Env (idempotent; a nil plan is the disabled fast
// path and leaves everything untouched). Call before deploying
// workloads so queues created during deployment are covered too.
func (e *Env) EnableChaos(plan *chaos.Plan) *chaos.Injector {
	if plan == nil {
		return e.Chaos
	}
	if e.Chaos == nil {
		e.Chaos = chaos.NewInjector(e.K, plan)
		e.AWS.SetChaos(e.Chaos)
		e.Azure.SetChaos(e.Chaos)
	}
	return e.Chaos
}

// Stage opens an application-level stage span (ML pipeline step, video
// split/detect/merge) under p's current context. Returns a no-op handle
// when tracing is disabled, so workload code can call it unconditionally.
func (e *Env) Stage(p *sim.Proc, name string) span.Active {
	return e.Trace.Start(p.Now(), span.KindStage, name, p.TraceCtx)
}

// RunStats is the outcome of one workflow invocation.
type RunStats struct {
	// E2E is the paper's end-to-end latency for this style (state
	// machine Start→End on AWS; orchestrator Running→Completed on
	// durable Azure; trigger→last-function elsewhere).
	E2E time.Duration
	// ColdStart is the style's cold-start metric (Fig 10 methodology).
	ColdStart time.Duration
	// ExecTime is the summed function execution time during the run.
	ExecTime time.Duration
	// Output is the workflow's result payload (workload-specific).
	Output []byte
	Err    error
}

// Breakdown derives the paper's queue-vs-execution decomposition: the
// time not spent executing or cold-starting is queueing/transfer.
func (r RunStats) Breakdown() obs.Breakdown {
	queue := r.E2E - r.ExecTime - r.ColdStart
	if queue < 0 {
		// Parallel stages can make summed exec exceed E2E; attribute
		// everything to execution then.
		return obs.Breakdown{ColdStart: r.ColdStart, ExecTime: r.E2E - r.ColdStart}
	}
	return obs.Breakdown{ColdStart: r.ColdStart, QueueTime: queue, ExecTime: r.ExecTime}
}

// Runner executes a deployed workflow.
type Runner interface {
	// Invoke runs the workflow once from process p with an opaque
	// workload-specific input.
	Invoke(p *sim.Proc, input []byte) (RunStats, error)
}

// Deployment is a deployed workflow plus its Table II metadata.
type Deployment struct {
	Runner Runner
	// FuncCount is the "# of Func" Table II column.
	FuncCount int
	// CodeSizeMB is the deployment-package size column.
	CodeSizeMB float64
}

// Workflow is a workload that can deploy itself in multiple styles.
type Workflow interface {
	// Name identifies the workload (e.g. "ml-training").
	Name() string
	// Impls lists the supported styles.
	Impls() []Impl
	// Deploy installs the workflow into env using style impl.
	Deploy(env *Env, impl Impl) (*Deployment, error)
}

// SupportsImpl reports whether wf lists impl.
func SupportsImpl(wf Workflow, impl Impl) bool {
	for _, i := range wf.Impls() {
		if i == impl {
			return true
		}
	}
	return false
}

// meterSnapshot captures all billing counters at an instant.
type meterSnapshot struct {
	awsGBs   float64
	awsInv   int64
	awsTrans int64
	awsS3    int64

	azGBs       float64
	azExec      int64
	azTxn       int64
	azTxnManual int64
	azBlob      int64

	awsExecTime time.Duration
	azExecTime  time.Duration
}

func snapshot(env *Env) meterSnapshot {
	am := env.AWS.Lambda.TotalMeter()
	zm := env.Azure.Host.TotalMeter()
	return meterSnapshot{
		awsGBs:      am.BilledGBs,
		awsInv:      am.Invocations,
		awsTrans:    env.AWS.SFN.TotalTransitions,
		awsS3:       env.AWS.S3.Stats().Transactions(),
		azGBs:       zm.BilledGBs,
		azExec:      zm.Invocations,
		azTxn:       env.Azure.StorageTransactions(),
		azTxnManual: env.Azure.ManualQueueTransactions(),
		azBlob:      env.Azure.Blob.Stats().Transactions(),
		awsExecTime: am.ExecTime,
		azExecTime:  zm.ExecTime,
	}
}

// billDelta prices the difference between two snapshots for the given
// style's cloud.
func billDelta(env *Env, impl Impl, before, after meterSnapshot) pricing.Bill {
	if impl.Cloud() == AWS {
		return env.AWSPrices.AWSBill(
			after.awsGBs-before.awsGBs,
			after.awsInv-before.awsInv,
			after.awsTrans-before.awsTrans,
			after.awsS3-before.awsS3,
		)
	}
	// Deployments without the durable extension are not billed for the
	// task hub's queues and tables.
	txns := after.azTxn - before.azTxn
	if !impl.Stateful() {
		txns = after.azTxnManual - before.azTxnManual
	}
	return env.AzurePrices.AzureBill(
		after.azGBs-before.azGBs,
		after.azExec-before.azExec,
		txns,
		after.azBlob-before.azBlob,
	)
}

// gbsDelta returns the billed GB-s difference for the style's cloud.
func gbsDelta(impl Impl, before, after meterSnapshot) float64 {
	if impl.Cloud() == AWS {
		return after.awsGBs - before.awsGBs
	}
	return after.azGBs - before.azGBs
}

// execDelta returns summed function execution time for the style's
// cloud between snapshots.
func execDelta(impl Impl, before, after meterSnapshot) time.Duration {
	if impl.Cloud() == AWS {
		return after.awsExecTime - before.awsExecTime
	}
	return after.azExecTime - before.azExecTime
}
