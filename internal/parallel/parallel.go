// Package parallel is the campaign fan-out layer: a bounded worker pool
// for running independent simulation campaigns concurrently while
// keeping every observable output deterministic.
//
// Every campaign in this repository builds a fresh, fully isolated
// core.Env — its own sim.Kernel, its own seeded RNG streams — and
// derives its seed from the caller's options alone, never from
// execution order. That makes campaigns embarrassingly parallel:
// the pool only decides *when* a campaign runs, never *what* it
// computes. Results are slotted by task index and errors are reported
// in task order, so a run with any worker count is byte-identical to
// the sequential run.
//
// The one rule (see the sim package's concurrency contract): a kernel
// and everything attached to it stays on the goroutine that runs it.
// Tasks must not share mutable state; anything they return is handed
// back through the index-slotted result slice.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n > 0 is used as-is; 0 or
// negative means one worker per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs task(0..n-1) on at most Workers(workers) goroutines and
// blocks until all started tasks finish. With one worker, tasks run
// inline in index order and the first error short-circuits the rest —
// exactly the pre-pool sequential loop. With more workers every task
// runs to completion and the error of the lowest-numbered failing task
// is returned ("first error wins"), so the reported error does not
// depend on scheduling order.
func ForEach(workers, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = task(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(0..n-1) through ForEach and returns the results slotted
// by index. On error the results are discarded and the lowest-index
// error is returned.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
