package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit count not respected")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("zero must mean GOMAXPROCS")
	}
	if Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("negative must mean GOMAXPROCS")
	}
}

func TestForEachRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		var ran atomic.Int64
		if err := ForEach(workers, 50, func(int) error {
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if ran.Load() != 50 {
			t.Fatalf("workers=%d ran %d/50 tasks", workers, ran.Load())
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Fatal("no tasks must mean no error")
	}
}

func TestMapSlotsResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got, err := Map(workers, 20, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d slot %d = %d", workers, i, v)
			}
		}
	}
}

func TestFirstErrorWinsRegardlessOfWorkers(t *testing.T) {
	// Tasks 3 and 11 fail; the lowest index must be reported for every
	// worker count, or parallel error paths diverge from sequential.
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(workers, 16, func(i int) (int, error) {
			if i == 3 || i == 11 {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d err = %v", workers, err)
		}
	}
}

func TestSequentialShortCircuits(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(1, 10, func(i int) error {
		ran.Add(1)
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran.Load() != 3 {
		t.Fatalf("sequential mode must stop at first error (ran %d)", ran.Load())
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	gate := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ForEach(workers, 12, func(int) error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			<-gate
			cur.Add(-1)
			return nil
		})
	}()
	for i := 0; i < 12; i++ {
		gate <- struct{}{}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, pool bound is %d", p, workers)
	}
}
