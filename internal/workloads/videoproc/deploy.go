package videoproc

import (
	"encoding/json"
	"fmt"
	"time"

	"statebench/internal/aws/lambda"
	"statebench/internal/aws/sfn"
	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/core"
	"statebench/internal/payload"
	"statebench/internal/sim"
	"statebench/internal/workloads/mlpipe"
)

// deployAWSLambda installs the monolithic Lambda (Table II: 1 λ,
// 70.8 MB): split, detect every frame, merge, all in one function.
func (w *Workflow) deployAWSLambda(env *core.Env) (*core.Deployment, error) {
	s3 := env.AWS.S3
	s3.PreloadShared(videoKey, payload.Zeros(w.Spec.TotalBytes))
	s3.PreloadShared(modelKey, payload.Zeros(w.Spec.ModelBytes))
	fnName := "video-mono"
	_, err := env.AWS.Lambda.Register(lambda.Config{
		Name: fnName, MemoryMB: awsVideoMemoryMB, ConsumedMemMB: memMono, CodeSizeMB: 32,
		Handler: func(ctx *lambda.Context, input []byte) ([]byte, error) {
			p := ctx.Proc()
			load := env.Stage(p, "video/load")
			if _, err := s3.Get(p, videoKey); err != nil {
				return nil, err
			}
			if _, err := s3.Get(p, modelKey); err != nil {
				return nil, err
			}
			load.End(p.Now())
			split := env.Stage(p, "video/split")
			ctx.Busy(w.Spec.splitCost(1))
			split.End(p.Now())
			detect := env.Stage(p, "video/detect")
			ctx.Busy(w.Spec.DetectTotal())
			detect.End(p.Now())
			merge := env.Stage(p, "video/merge")
			ctx.Busy(w.Spec.mergeCost(1))
			s3.PutShared(p, "videos/output", payload.Zeros(w.Spec.TotalBytes))
			merge.End(p.Now())
			return []byte(`{"frames":` + fmt.Sprint(w.Spec.Frames) + `}`), nil
		},
	})
	if err != nil {
		return nil, err
	}
	return &core.Deployment{Runner: &monoLambdaRunner{env: env, fn: fnName}, FuncCount: 1, CodeSizeMB: 70.8}, nil
}

type monoLambdaRunner struct {
	env *core.Env
	fn  string
}

// Invoke implements core.Runner.
func (r *monoLambdaRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	inv, err := r.env.AWS.Lambda.Invoke(p, r.fn, nil)
	if err != nil {
		return core.RunStats{}, err
	}
	return core.RunStats{E2E: inv.Total, ColdStart: inv.ColdStartDelay, ExecTime: inv.ExecTime, Output: inv.Output, Err: inv.Err}, nil
}

// deployAWSStep installs the Fig 5 state machine (Table II: 3 λ,
// 214.8 MB): SplitVideo → Map(FaceDetect) → MergeVideo, with dynamic
// parallelism via the Map state.
func (w *Workflow) deployAWSStep(env *core.Env) (*core.Deployment, error) {
	s3 := env.AWS.S3
	s3.PreloadShared(videoKey, payload.Zeros(w.Spec.TotalBytes))
	s3.PreloadShared(modelKey, payload.Zeros(w.Spec.ModelBytes))
	n := w.Workers

	if _, err := env.AWS.Lambda.Register(lambda.Config{
		Name: "video-split", MemoryMB: awsVideoMemoryMB, ConsumedMemMB: memSplit, CodeSizeMB: 28,
		Handler: func(ctx *lambda.Context, input []byte) ([]byte, error) {
			m, err := parseChunk(input)
			if err != nil {
				return nil, err
			}
			p := ctx.Proc()
			if _, err := s3.Get(p, videoKey); err != nil {
				return nil, err
			}
			ctx.Busy(w.Spec.splitCost(1))
			chunks := make([]chunkMsg, n)
			for i := 0; i < n; i++ {
				key := chunkKey(m.Run, i)
				s3.PutShared(p, key, payload.Zeros(w.Spec.chunkBytes(i, n)))
				chunks[i] = chunkMsg{Run: m.Run, Key: key, Index: i}
			}
			out, err := json.Marshal(map[string]any{"run": m.Run, "chunks": chunks})
			return out, err
		},
	}); err != nil {
		return nil, err
	}

	if _, err := env.AWS.Lambda.Register(lambda.Config{
		Name: "video-detect", MemoryMB: awsVideoMemoryMB, ConsumedMemMB: memDetect, CodeSizeMB: 34,
		Handler: func(ctx *lambda.Context, input []byte) ([]byte, error) {
			m, err := parseChunk(input)
			if err != nil {
				return nil, err
			}
			p := ctx.Proc()
			if _, err := s3.Get(p, m.Key); err != nil {
				return nil, err
			}
			if _, err := s3.Get(p, modelKey); err != nil {
				return nil, err
			}
			ctx.Busy(w.Spec.detectCost(m.Index, n, 1))
			key := resultKey(m.Run, m.Index)
			s3.PutShared(p, key, payload.Zeros(w.Spec.chunkBytes(m.Index, n)))
			return marshalChunk(chunkMsg{Run: m.Run, Key: key, Index: m.Index}), nil
		},
	}); err != nil {
		return nil, err
	}

	if _, err := env.AWS.Lambda.Register(lambda.Config{
		Name: "video-merge", MemoryMB: awsVideoMemoryMB, ConsumedMemMB: memMerge, CodeSizeMB: 28,
		Handler: func(ctx *lambda.Context, input []byte) ([]byte, error) {
			var in struct {
				Results []chunkMsg `json:"results"`
			}
			if err := json.Unmarshal(input, &in); err != nil {
				return nil, err
			}
			p := ctx.Proc()
			for _, c := range in.Results {
				if _, err := s3.Get(p, c.Key); err != nil {
					return nil, err
				}
			}
			ctx.Busy(w.Spec.mergeCost(1))
			s3.PutShared(p, "videos/output", payload.Zeros(w.Spec.TotalBytes))
			return []byte(fmt.Sprintf(`{"chunks":%d}`, len(in.Results))), nil
		},
	}); err != nil {
		return nil, err
	}

	machine := &sfn.StateMachine{
		Comment: "Video processing with Map-state dynamic parallelism (paper Fig 5)",
		StartAt: "SplitVideo",
		States: map[string]*sfn.State{
			"SplitVideo": {Type: sfn.TypeTask, Resource: "video-split", Next: "FaceDetect"},
			"FaceDetect": {
				Type: sfn.TypeMap, ItemsPath: "$.chunks", ResultPath: "$.results", Next: "MergeVideo",
				MaxConcurrency: w.MapConcurrency,
				Iterator: &sfn.StateMachine{StartAt: "DetectChunk", States: map[string]*sfn.State{
					"DetectChunk": {Type: sfn.TypeTask, Resource: "video-detect", End: true},
				}},
			},
			"MergeVideo": {Type: sfn.TypeTask, Resource: "video-merge", End: true},
		},
	}
	smName := fmt.Sprintf("video-%dw", n)
	if err := env.AWS.SFN.CreateStateMachine(smName, machine); err != nil {
		return nil, err
	}
	return &core.Deployment{Runner: &stepRunner{env: env, machine: smName}, FuncCount: 3, CodeSizeMB: 214.8}, nil
}

type stepRunner struct {
	env     *core.Env
	machine string
	nextRun int64
}

// Invoke implements core.Runner.
func (r *stepRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	r.nextRun++
	exec, err := r.env.AWS.SFN.StartExecution(p, r.machine, map[string]any{"run": float64(r.nextRun)})
	if err != nil {
		return core.RunStats{}, err
	}
	cold := exec.FirstTaskDelay
	if cold < 0 {
		cold = 0
	}
	var out []byte
	if exec.Err == nil {
		out, _ = json.Marshal(exec.Output)
	}
	return core.RunStats{E2E: exec.Duration(), ColdStart: cold, Output: out, Err: exec.Err}, nil
}

// deployAzFunc installs the monolithic Azure function (Table II: 1 λ,
// 204 MB).
func (w *Workflow) deployAzFunc(env *core.Env) (*core.Deployment, error) {
	blob := env.Azure.Blob
	blob.PreloadShared(videoKey, payload.Zeros(w.Spec.TotalBytes))
	blob.PreloadShared(modelKey, payload.Zeros(w.Spec.ModelBytes))
	fnName := "video-mono"
	speed := mlpipe.AzureSpeed
	_, err := env.Azure.Host.Register(functions.Config{
		Name: fnName, ConsumedMemMB: memMono,
		Handler: func(ctx *functions.Context, input []byte) ([]byte, error) {
			p := ctx.Proc()
			load := env.Stage(p, "video/load")
			if _, err := blob.Get(p, videoKey); err != nil {
				return nil, err
			}
			if _, err := blob.Get(p, modelKey); err != nil {
				return nil, err
			}
			load.End(p.Now())
			// One combined busy phase: splitting the scaled sum would
			// change its rounding, so the stage span covers all three.
			process := env.Stage(p, "video/process")
			busy := time.Duration(float64(w.Spec.splitCost(1)+w.Spec.DetectTotal()+w.Spec.mergeCost(1)) / speed)
			ctx.Busy(busy)
			blob.PutShared(p, "videos/output", payload.Zeros(w.Spec.TotalBytes))
			process.End(p.Now())
			return []byte(fmt.Sprintf(`{"frames":%d}`, w.Spec.Frames)), nil
		},
	})
	if err != nil {
		return nil, err
	}
	return &core.Deployment{Runner: &azFuncRunner{env: env, fn: fnName}, FuncCount: 1, CodeSizeMB: 204}, nil
}

type azFuncRunner struct {
	env *core.Env
	fn  string
}

// Invoke implements core.Runner.
func (r *azFuncRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	start := p.Now()
	res, err := r.env.Azure.Host.InvokeHTTP(p, r.fn, nil)
	if err != nil {
		return core.RunStats{}, err
	}
	cold := time.Duration(0)
	if res.Cold {
		cold = res.SchedDelay
	}
	return core.RunStats{E2E: p.Now() - start, ColdStart: cold, ExecTime: res.ExecTime, Output: res.Output, Err: res.Err}, nil
}

// deployAzDorch installs the durable-orchestrator fan-out (Table II:
// 3 λ, 219 MB): split activity, dynamically parallel detect activities
// ("a single line of code" in the paper), merge activity.
func (w *Workflow) deployAzDorch(env *core.Env) (*core.Deployment, error) {
	blob := env.Azure.Blob
	blob.PreloadShared(videoKey, payload.Zeros(w.Spec.TotalBytes))
	blob.PreloadShared(modelKey, payload.Zeros(w.Spec.ModelBytes))
	hub := env.Azure.Hub
	n := w.Workers
	speed := mlpipe.AzureSpeed
	runner := &dorchRunner{env: env}
	env.Scratch[finishScratchKey] = &runner.finishes

	if err := hub.RegisterActivity("video-split", memSplit, func(ctx *functions.Context, input []byte) ([]byte, error) {
		m, err := parseChunk(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if _, err := blob.Get(p, videoKey); err != nil {
			return nil, err
		}
		ctx.Busy(time.Duration(float64(w.Spec.splitCost(1)) / speed))
		for i := 0; i < n; i++ {
			blob.PutShared(p, chunkKey(m.Run, i), payload.Zeros(w.Spec.chunkBytes(i, n)))
		}
		return marshalChunk(chunkMsg{Run: m.Run, Index: n}), nil
	}); err != nil {
		return nil, err
	}

	if err := hub.RegisterActivity("video-detect", memDetect, func(ctx *functions.Context, input []byte) ([]byte, error) {
		m, err := parseChunk(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if _, err := blob.Get(p, chunkKey(m.Run, m.Index)); err != nil {
			return nil, err
		}
		if _, err := blob.Get(p, modelKey); err != nil {
			return nil, err
		}
		ctx.Busy(time.Duration(float64(w.Spec.detectCost(m.Index, n, 1)) / speed))
		blob.PutShared(p, resultKey(m.Run, m.Index), payload.Zeros(w.Spec.chunkBytes(m.Index, n)))
		// Record this worker's finish time relative to the run start
		// (Table III's per-worker metric).
		runner.finishes = append(runner.finishes, p.Now()-runner.curStart)
		return marshalChunk(chunkMsg{Run: m.Run, Index: m.Index}), nil
	}); err != nil {
		return nil, err
	}

	if err := hub.RegisterActivity("video-merge", memMerge, func(ctx *functions.Context, input []byte) ([]byte, error) {
		m, err := parseChunk(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		for i := 0; i < n; i++ {
			if _, err := blob.Get(p, resultKey(m.Run, i)); err != nil {
				return nil, err
			}
		}
		ctx.Busy(time.Duration(float64(w.Spec.mergeCost(1)) / speed))
		blob.PutShared(p, "videos/output", payload.Zeros(w.Spec.TotalBytes))
		return []byte(fmt.Sprintf(`{"chunks":%d}`, n)), nil
	}); err != nil {
		return nil, err
	}

	orch := fmt.Sprintf("video-dorch-%dw", n)
	if err := hub.RegisterOrchestrator(orch, mlpipe.MemOrch, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		if _, err := ctx.CallActivity("video-split", input).Await(); err != nil {
			return nil, err
		}
		m, err := parseChunk(input)
		if err != nil {
			return nil, err
		}
		// Dynamic fan-out: the paper's "single line of code".
		tasks := make([]*durable.Task, n)
		for i := 0; i < n; i++ {
			tasks[i] = ctx.CallActivity("video-detect", marshalChunk(chunkMsg{Run: m.Run, Index: i}))
		}
		if _, err := ctx.WaitAll(tasks...); err != nil {
			return nil, err
		}
		return ctx.CallActivity("video-merge", marshalChunk(chunkMsg{Run: m.Run})).Await()
	}); err != nil {
		return nil, err
	}
	runner.orch = orch
	return &core.Deployment{Runner: runner, FuncCount: 3, CodeSizeMB: 219}, nil
}

type dorchRunner struct {
	env      *core.Env
	orch     string
	nextRun  int64
	curStart sim.Time
	finishes []time.Duration
}

// Invoke implements core.Runner.
func (r *dorchRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	r.nextRun++
	r.curStart = p.Now()
	out, hd, err := r.env.Azure.Client.Run(p, r.orch, marshalChunk(chunkMsg{Run: r.nextRun}))
	stats := core.RunStats{Output: out, Err: err}
	if hd != nil {
		stats.E2E = hd.E2E()
		stats.ColdStart = hd.ColdStart()
	}
	if hd == nil && err != nil {
		return stats, err
	}
	return stats, nil
}

// WorkerSchedDelays exposes the Azure host's per-work-item scheduling
// delays (Fig 14's metric) after a Dorch campaign.
func WorkerSchedDelays(env *core.Env) []time.Duration {
	return env.Azure.Host.Stats().SchedDelays
}

// finishScratchKey indexes the per-worker finish times in Env.Scratch.
const finishScratchKey = "videoproc.finishes"

// WorkerFinishTimes returns each detect worker's completion time
// relative to its run's start (Table III's per-worker metric), for the
// Az-Dorch deployment living in env.
func WorkerFinishTimes(env *core.Env) []time.Duration {
	v, ok := env.Scratch[finishScratchKey].(*[]time.Duration)
	if !ok {
		return nil
	}
	return append([]time.Duration(nil), (*v)...)
}
