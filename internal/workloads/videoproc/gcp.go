package videoproc

import (
	"encoding/json"

	"statebench/internal/core"
	"statebench/internal/gcp"
	"statebench/internal/payload"
	"statebench/internal/sim"
)

// This file contributes the third provider's styles to the video
// workload, wired entirely from init (the dispatch table in
// videoproc.go never mentions GCP).

// Only the orchestrated style is offered: the ~12.5-minute monolithic
// detection pass cannot fit inside gen-1 Cloud Functions' 540 s
// execution limit, so — like Table II's video column, which also
// supports a subset of styles — GCP-Func is simply not deployable here.
func init() {
	deployers[gcp.Wflow] = (*Workflow).deployGCPWflow
	extraImpls = append(extraImpls, gcp.Wflow)
}

// gcpSpeed scales the AWS-calibrated per-frame detection cost to a
// gen-1 Cloud Functions 2 GB instance (2.4 GHz fractional vCPU).
const gcpSpeed = 0.85

// gcpVideoMemoryMB is the 2 GB tier, matching the paper's AWS config.
const gcpVideoMemoryMB = 2048

// deployGCPWflow installs the Fig 5 shape on GCP Workflows: a split
// call, a parallel block of face-detection calls (one branch per
// chunk), and a merge call.
func (w *Workflow) deployGCPWflow(env *core.Env) (*core.Deployment, error) {
	gc := gcp.FromEnv(env)
	gcs := gc.GCS
	gcs.PreloadShared(videoKey, payload.Zeros(w.Spec.TotalBytes))
	gcs.PreloadShared(modelKey, payload.Zeros(w.Spec.ModelBytes))
	n := w.Workers

	if _, err := gc.Functions.Register(gcp.Config{
		Name: "video-split", MemoryMB: gcpVideoMemoryMB, ConsumedMemMB: memSplit, CodeSizeMB: 28,
		Handler: func(ctx *gcp.Context, input []byte) ([]byte, error) {
			m, err := parseChunk(input)
			if err != nil {
				return nil, err
			}
			p := ctx.Proc()
			if _, err := gcs.Get(p, videoKey); err != nil {
				return nil, err
			}
			ctx.Busy(w.Spec.splitCost(gcpSpeed))
			chunks := make([]chunkMsg, n)
			for i := 0; i < n; i++ {
				key := chunkKey(m.Run, i)
				gcs.PutShared(p, key, payload.Zeros(w.Spec.chunkBytes(i, n)))
				chunks[i] = chunkMsg{Run: m.Run, Key: key, Index: i}
			}
			out, err := json.Marshal(map[string]any{"run": m.Run, "chunks": chunks})
			return out, err
		},
	}); err != nil {
		return nil, err
	}

	if _, err := gc.Functions.Register(gcp.Config{
		Name: "video-detect", MemoryMB: gcpVideoMemoryMB, ConsumedMemMB: memDetect, CodeSizeMB: 34,
		Handler: func(ctx *gcp.Context, input []byte) ([]byte, error) {
			m, err := parseChunk(input)
			if err != nil {
				return nil, err
			}
			p := ctx.Proc()
			if _, err := gcs.Get(p, m.Key); err != nil {
				return nil, err
			}
			if _, err := gcs.Get(p, modelKey); err != nil {
				return nil, err
			}
			ctx.Busy(w.Spec.detectCost(m.Index, n, gcpSpeed))
			key := resultKey(m.Run, m.Index)
			gcs.PutShared(p, key, payload.Zeros(w.Spec.chunkBytes(m.Index, n)))
			return marshalChunk(chunkMsg{Run: m.Run, Key: key, Index: m.Index}), nil
		},
	}); err != nil {
		return nil, err
	}

	if _, err := gc.Functions.Register(gcp.Config{
		Name: "video-merge", MemoryMB: gcpVideoMemoryMB, ConsumedMemMB: memMerge, CodeSizeMB: 28,
		Handler: func(ctx *gcp.Context, input []byte) ([]byte, error) {
			var in struct {
				Results []chunkMsg `json:"results"`
			}
			if err := json.Unmarshal(input, &in); err != nil {
				return nil, err
			}
			p := ctx.Proc()
			for _, c := range in.Results {
				if _, err := gcs.Get(p, c.Key); err != nil {
					return nil, err
				}
			}
			ctx.Busy(w.Spec.mergeCost(gcpSpeed))
			gcs.PutShared(p, "videos/output", payload.Zeros(w.Spec.TotalBytes))
			return []byte(`{"merged":true}`), nil
		},
	}); err != nil {
		return nil, err
	}

	def := func(ctx *gcp.Ctx, input map[string]any) (map[string]any, error) {
		run, _ := input["run"].(float64)
		out, err := ctx.Call("video-split", marshalChunk(chunkMsg{Run: int64(run)}))
		if err != nil {
			return nil, err
		}
		var split struct {
			Run    int64      `json:"run"`
			Chunks []chunkMsg `json:"chunks"`
		}
		if err := json.Unmarshal(out, &split); err != nil {
			return nil, err
		}
		results := make([]chunkMsg, len(split.Chunks))
		branches := make([]func(*gcp.Ctx) error, len(split.Chunks))
		for i, c := range split.Chunks {
			i, c := i, c
			branches[i] = func(bc *gcp.Ctx) error {
				bout, berr := bc.Call("video-detect", marshalChunk(c))
				if berr != nil {
					return berr
				}
				results[i], berr = parseChunk(bout)
				return berr
			}
		}
		if err := ctx.Parallel(branches...); err != nil {
			return nil, err
		}
		mergeIn, err := json.Marshal(map[string]any{"results": results})
		if err != nil {
			return nil, err
		}
		if _, err := ctx.Call("video-merge", mergeIn); err != nil {
			return nil, err
		}
		return map[string]any{"frames": float64(w.Spec.Frames)}, nil
	}
	wfName := "video-processing"
	if err := gc.Workflows.Create(wfName, def); err != nil {
		return nil, err
	}
	return &core.Deployment{Runner: &gwfVideoRunner{gc: gc, wf: wfName}, FuncCount: 3, CodeSizeMB: 214.8}, nil
}

// gwfVideoRunner executes the GCP video workflow per run.
type gwfVideoRunner struct {
	gc      *gcp.Cloud
	wf      string
	nextRun int64
}

// Invoke implements core.Runner.
func (r *gwfVideoRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	r.nextRun++
	exec, err := r.gc.Workflows.Execute(p, r.wf, map[string]any{"run": float64(r.nextRun)})
	if err != nil {
		return core.RunStats{}, err
	}
	cold := exec.FirstCallDelay
	if cold < 0 {
		cold = 0
	}
	var out []byte
	if exec.Err == nil {
		out, _ = json.Marshal(exec.Output)
	}
	return core.RunStats{E2E: exec.Duration(), ColdStart: cold, Output: out, Err: exec.Err}, nil
}
