package videoproc

import (
	"testing"
	"time"

	"statebench/internal/core"
)

// fastSpec shrinks the workload so tests stay quick while keeping the
// split/detect/merge structure.
func fastSpec() Spec {
	s := DefaultSpec()
	s.TotalBytes = 10e6
	s.Frames = 600 // ~2 min of detection: enough for parallelism to matter
	return s
}

func measure(t *testing.T, impl core.Impl, workers, iters int, gap time.Duration) *core.Series {
	t.Helper()
	wf := &Workflow{Workers: workers, Spec: fastSpec()}
	opt := core.DefaultMeasureOptions()
	opt.Iters = iters
	opt.Gap = gap
	opt.Seed = 31
	s, err := core.Measure(wf, impl, opt)
	if err != nil {
		t.Fatalf("measure %s: %v", impl, err)
	}
	if s.Errors != 0 {
		t.Fatalf("%s had %d errors", impl, s.Errors)
	}
	return s
}

func TestChunkAccounting(t *testing.T) {
	s := fastSpec()
	totalB, totalF := 0, 0
	for i := 0; i < 7; i++ {
		totalB += s.chunkBytes(i, 7)
		totalF += s.chunkFrames(i, 7)
	}
	if totalB != s.TotalBytes || totalF != s.Frames {
		t.Fatalf("chunks don't cover: %d/%d bytes, %d/%d frames", totalB, s.TotalBytes, totalF, s.Frames)
	}
}

func TestInvalidWorkerCount(t *testing.T) {
	env := core.NewEnv(1)
	if _, err := (&Workflow{Workers: 0}).Deploy(env, core.AWSStep); err == nil {
		t.Fatal("0 workers deployed")
	}
}

func TestAWSParallelismScales(t *testing.T) {
	// Paper Fig 12: more AWS Map workers => much lower latency vs the
	// monolithic Lambda (>80% improvement at high fan-out).
	mono := measure(t, core.AWSLambda, 1, 3, 30*time.Second)
	par := measure(t, core.AWSStep, 10, 3, 30*time.Second)
	improvement := 1 - float64(par.E2E.Median())/float64(mono.E2E.Median())
	if improvement < 0.5 {
		t.Fatalf("AWS-Step 10w improvement = %.0f%% (mono %v, par %v), want >= 50%%",
			improvement*100, mono.E2E.Median(), par.E2E.Median())
	}
}

func TestAzureParallelismFailsToScale(t *testing.T) {
	// Paper Fig 12: Azure durable fan-out does not improve latency the
	// way AWS does — the scale controller adds instances too slowly.
	// With a long gap (cold pool each run), more workers stop helping.
	az10 := measure(t, core.AzDorch, 10, 2, 20*time.Minute)
	az40 := measure(t, core.AzDorch, 40, 2, 20*time.Minute)
	aws10 := measure(t, core.AWSStep, 10, 2, 20*time.Minute)
	aws40 := measure(t, core.AWSStep, 40, 2, 20*time.Minute)

	awsGain := float64(aws10.E2E.Median()) / float64(aws40.E2E.Median())
	azGain := float64(az10.E2E.Median()) / float64(az40.E2E.Median())
	if azGain >= awsGain {
		t.Fatalf("Azure fan-out gain %.2f not worse than AWS %.2f", azGain, awsGain)
	}
	// Azure at 40 workers must not be dramatically better than at 10
	// (the paper saw flat-to-worse).
	if azGain > 1.5 {
		t.Fatalf("Azure gained %.2fx from 4x workers; expected scheduling-bound", azGain)
	}
}

func TestSchedulingDelaysRecorded(t *testing.T) {
	wf := &Workflow{Workers: 20, Spec: fastSpec()}
	opt := core.DefaultMeasureOptions()
	opt.Iters = 1
	opt.Warmup = 0
	opt.Seed = 7
	opt.KeepEnv = true // the scheduling-delay drill-down reads the Env
	s, err := core.Measure(wf, core.AzDorch, opt)
	if err != nil {
		t.Fatal(err)
	}
	delays := WorkerSchedDelays(s.Env)
	if len(delays) < 20 {
		t.Fatalf("recorded %d sched delays, want >= 20 workers", len(delays))
	}
	var max time.Duration
	for _, d := range delays {
		if d > max {
			max = d
		}
	}
	// Cold 20-way fan-out against a 1-instance-per-6s controller must
	// produce multi-minute-scale tails... at least tens of seconds.
	if max < 30*time.Second {
		t.Fatalf("max sched delay %v, want >= 30s under cold fan-out", max)
	}
}

func TestMonolithsAgreeAcrossClouds(t *testing.T) {
	aws := measure(t, core.AWSLambda, 1, 2, 30*time.Second)
	az := measure(t, core.AzFunc, 1, 2, 30*time.Second)
	// Azure consumption runs the same work slower (speed factor).
	if az.E2E.Median() <= aws.E2E.Median() {
		t.Fatalf("Az-Func %v not slower than AWS-Lambda %v", az.E2E.Median(), aws.E2E.Median())
	}
}

func TestStepTransitionsScaleWithWorkers(t *testing.T) {
	s10 := measure(t, core.AWSStep, 10, 2, 30*time.Second)
	s20 := measure(t, core.AWSStep, 20, 2, 30*time.Second)
	// Split + Map + N iterations + Merge.
	if s10.MeanTxns != 13 || s20.MeanTxns != 23 {
		t.Fatalf("transitions = %v/%v, want 13/23", s10.MeanTxns, s20.MeanTxns)
	}
}
