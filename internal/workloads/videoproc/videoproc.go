// Package videoproc implements the paper's video-processing workload
// (Fig 5): a sequential split of the input video into chunks, a
// homogeneous army of CPU-intensive face-detection workers over the
// chunks (each fetching a ~1 MB model from blob storage), and a final
// merge — in the Table II styles (AWS-Lambda, AWS-Step with a Map
// state, Az-Func, Az-Dorch with dynamic fan-out).
//
// Chunk payloads always exceed the service payload limits, so all video
// bytes move through blob storage, exactly as the paper's
// implementation was forced to do.
//
// The workflow is defined once as a provider-neutral flow graph
// (def.go); per-provider deployments are produced by the registered
// flow lowerers, so this package contains zero provider-specific
// deployment code.
package videoproc

import (
	"encoding/json"
	"fmt"
	"time"

	"statebench/internal/core"
	"statebench/internal/flow"
	_ "statebench/internal/flow/lowerers"
)

// Spec describes the (virtual) input video and detection workload.
type Spec struct {
	// TotalBytes is the input video size (paper: 100 MB Sintel clip).
	TotalBytes int
	// Frames is the total frame count across the video.
	Frames int
	// ModelBytes is the face-detection model each worker fetches.
	ModelBytes int
	// PerFrame is the detection time per frame at AWS speed with the
	// paper's 2 GB configuration.
	PerFrame time.Duration
	// SplitBW and MergeBW are the chunking/merging throughputs
	// (bytes/sec of video processed).
	SplitBW float64
	MergeBW float64
}

// DefaultSpec matches the paper's setup: 100 MB video, ~12.5 minutes of
// CPU-bound detection in total.
func DefaultSpec() Spec {
	return Spec{
		TotalBytes: 100e6,
		Frames:     3000,
		ModelBytes: 1e6,
		// 200 ms/frame keeps the monolithic implementations inside
		// both platforms' execution limits (AWS 15 min at full speed,
		// Azure 30 min at consumption-plan speed), as the paper's
		// monoliths evidently were.
		PerFrame: 200 * time.Millisecond,
		SplitBW:  30e6,
		MergeBW:  40e6,
	}
}

// DetectTotal returns the full-video detection time at AWS speed.
func (s Spec) DetectTotal() time.Duration { return time.Duration(s.Frames) * s.PerFrame }

// Workflow is the video-processing workload for a worker count.
type Workflow struct {
	Workers int
	Spec    Spec
	// MapConcurrency bounds the AWS Map state's parallelism
	// (0 = unbounded), for the concurrency ablation.
	MapConcurrency int
	// MemMB, when > 0, overrides the provisioned memory tier of every
	// platform task (the optimizer's memory knob); 0 keeps each
	// lowering provider's default.
	MemMB int
}

// New returns the workload with the default spec.
func New(workers int) *Workflow { return &Workflow{Workers: workers, Spec: DefaultSpec()} }

// Name implements core.Workflow.
func (w *Workflow) Name() string { return fmt.Sprintf("video-processing-%dw", w.Workers) }

// Impls implements core.Workflow (Table II's video column).
func (w *Workflow) Impls() []core.Impl {
	return []core.Impl{core.AWSLambda, core.AWSStep, core.AzFunc, core.AzDorch}
}

// ExtraImpls implements core.ExtendedWorkflow: every registered
// lowerer the IR supports beyond Table II's video column, discovered
// from the flow registry. The monolith's execution estimate keeps
// GCP-Func out — like Table II's video column, GCP offers only a
// subset of styles.
func (w *Workflow) ExtraImpls() []core.Impl {
	def, err := definition(w)
	if err != nil {
		return nil
	}
	return flow.Extras(def, w.Impls())
}

// Deploy implements core.Workflow by lowering the IR definition.
func (w *Workflow) Deploy(env *core.Env, impl core.Impl) (*core.Deployment, error) {
	if w.Workers < 1 {
		return nil, fmt.Errorf("videoproc: workers must be >= 1, got %d", w.Workers)
	}
	def, err := definition(w)
	if err != nil {
		return nil, err
	}
	flow.OverrideMemMB(def, w.MemMB)
	return flow.Deploy(env, def, impl)
}

const (
	videoKey = "videos/input"
	modelKey = "models/facedetect"
)

type chunkMsg struct {
	Run   int64  `json:"run"`
	Key   string `json:"key,omitempty"`
	Index int    `json:"index"`
	Bytes int    `json:"bytes,omitempty"`
}

func marshalChunk(m chunkMsg) []byte { b, _ := json.Marshal(m); return b }

func parseChunk(data []byte) (chunkMsg, error) {
	var m chunkMsg
	err := json.Unmarshal(data, &m)
	return m, err
}

func chunkKey(run int64, i int) string  { return fmt.Sprintf("tmp/video%06d/chunk-%04d", run, i) }
func resultKey(run int64, i int) string { return fmt.Sprintf("tmp/video%06d/result-%04d", run, i) }

// chunkBytes returns the size of chunk i of n.
func (s Spec) chunkBytes(i, n int) int {
	base := s.TotalBytes / n
	if i == n-1 {
		return base + s.TotalBytes%n
	}
	return base
}

// chunkFrames returns the frame count of chunk i of n.
func (s Spec) chunkFrames(i, n int) int {
	base := s.Frames / n
	if i == n-1 {
		return base + s.Frames%n
	}
	return base
}

// splitCost is the CPU time of the chunking pass at the given speed.
func (s Spec) splitCost(speed float64) time.Duration {
	return time.Duration(float64(s.TotalBytes) / s.SplitBW / speed * float64(time.Second))
}

// mergeCost is the CPU time of the merge pass at the given speed.
func (s Spec) mergeCost(speed float64) time.Duration {
	return time.Duration(float64(s.TotalBytes) / s.MergeBW / speed * float64(time.Second))
}

// detectCost is the CPU time to run face detection on chunk i of n.
func (s Spec) detectCost(i, n int, speed float64) time.Duration {
	return time.Duration(float64(s.chunkFrames(i, n)) * float64(s.PerFrame) / speed)
}

// Consumed memory models (MB).
const (
	memSplit  = 700
	memDetect = 900
	memMerge  = 760
	memMono   = 980
)

// awsVideoMemoryMB is the paper's 2 GB configuration for video; GCP's
// tier matches it.
const awsVideoMemoryMB = 2048

// WorkerSchedDelays exposes the Azure host's per-work-item scheduling
// delays (Fig 14's metric) after a Dorch campaign.
func WorkerSchedDelays(env *core.Env) []time.Duration {
	return env.Azure.Host.Stats().SchedDelays
}

// finishScratchKey indexes the per-worker finish times in Env.Scratch.
const finishScratchKey = "videoproc.finishes"

// WorkerFinishTimes returns each detect worker's completion time
// relative to its run's start (Table III's per-worker metric), for the
// Az-Dorch deployment living in env.
func WorkerFinishTimes(env *core.Env) []time.Duration {
	v, ok := env.Scratch[finishScratchKey].(*[]time.Duration)
	if !ok {
		return nil
	}
	return append([]time.Duration(nil), (*v)...)
}
