package videoproc

import (
	"encoding/json"
	"fmt"
	"time"

	"statebench/internal/flow"
	"statebench/internal/payload"
	"statebench/internal/workloads/mlpipe"
)

// gcpSpeed scales the AWS-calibrated per-frame detection cost to a
// gen-1 Cloud Functions 2 GB instance (2.4 GHz fractional vCPU).
const gcpSpeed = 0.85

// Rough payload sizes on the step edges (bytes) for the static payload
// lint. Chunk *video* bytes always travel by blob key — only the small
// JSON control messages cross orchestration edges, which is the design
// the paper's payload limits force.
const (
	estEntry    = 24 // {"run","index"} entry message
	estChunkMsg = 96 // {"run","key","index"} chunk pointer
)

// estSplitOut is the split envelope carrying one chunk pointer per
// worker.
func estSplitOut(n int) int { return 64 + n*estChunkMsg }

// definition builds the provider-neutral IR for the video-processing
// workflow: Fig 5's split → parallel face-detection → merge shape in
// the Mono, Machine, and DurableOrch classes.
func definition(w *Workflow) (*flow.Definition, error) {
	n := w.Workers

	// The monolith's execution estimate gates it against provider
	// ceilings: ~606 s at the default spec fits Lambda (900 s) and a
	// premium Azure plan (1800 s at Azure speed), but not gen-1 Cloud
	// Functions (540 s at GCP speed) — which is why, like Table II's
	// video column, GCP offers only the orchestrated style.
	estMono := (w.Spec.splitCost(1) + w.Spec.DetectTotal() + w.Spec.mergeCost(1)).Seconds()

	mono := &flow.Graph{
		Class: flow.Mono,
		Start: "Mono",
		Nodes: []*flow.Node{{
			Name: "Mono", Kind: flow.KindTask,
			Fn: "video-mono", Stage: "mono",
			MemMB: awsVideoMemoryMB, ConsumedMemMB: memMono, CodeSizeMB: 32,
			EstSeconds: estMono,
		}},
		FuncCount:            1,
		CodeSizeMB:           70.8,
		CodeSizeMBByProvider: map[string]float64{"Azure": 204},
	}

	machine := &flow.Graph{
		Class: flow.Machine,
		Start: "SplitVideo",
		Nodes: []*flow.Node{
			{
				Name: "SplitVideo", Kind: flow.KindTask, Next: "FaceDetect",
				Fn: "video-split", Stage: "split",
				MemMB: awsVideoMemoryMB, ConsumedMemMB: memSplit, CodeSizeMB: 28,
				InEst: estEntry, OutEst: estSplitOut(n),
			},
			{
				Name: "FaceDetect", Kind: flow.KindMap, Next: "MergeVideo",
				ItemsField: "chunks", ResultField: "results",
				MaxConcurrency: w.MapConcurrency,
				Join:           flow.JoinEnvelope,
				IterName:       "DetectChunk",
				Iter: &flow.Node{
					Name: "DetectChunk", Kind: flow.KindTask,
					Fn: "video-detect", Stage: "detect",
					MemMB: awsVideoMemoryMB, ConsumedMemMB: memDetect, CodeSizeMB: 34,
					InEst: estChunkMsg, OutEst: estChunkMsg,
				},
				InEst: estSplitOut(n), OutEst: estSplitOut(n),
			},
			{
				Name: "MergeVideo", Kind: flow.KindTask,
				Fn: "video-merge", Stage: "merge",
				MemMB: awsVideoMemoryMB, ConsumedMemMB: memMerge, CodeSizeMB: 28,
				InEst: estSplitOut(n), OutEst: estEntry,
			},
		},
		MachineName:           fmt.Sprintf("video-%dw", n),
		MachineNameByProvider: map[string]string{"GCP": "video-processing"},
		Comment:               "Video processing with Map-state dynamic parallelism (paper Fig 5)",
		FuncCount:             3,
		CodeSizeMB:            214.8,
	}

	dorch := &flow.Graph{
		Class: flow.DurableOrch,
		Start: "Split",
		Nodes: []*flow.Node{
			{
				Name: "Split", Kind: flow.KindTask, Next: "Detect",
				Fn: "video-split", Stage: "dorch-split", ConsumedMemMB: memSplit,
				InEst: estEntry, OutEst: estChunkMsg,
			},
			{
				// Dynamic fan-out: the paper's "single line of code". The
				// fan derives the chunk items from the orchestration
				// input; workers read their chunks from blob storage, so
				// the joined outputs are discarded.
				Name: "Detect", Kind: flow.KindMap, Next: "Merge",
				Input: flow.InputEntry,
				Fan:   "chunks", Join: flow.JoinDiscard,
				Iter: &flow.Node{
					Name: "DetectOne", Kind: flow.KindTask,
					Fn: "video-detect", Stage: "dorch-detect", ConsumedMemMB: memDetect,
					InEst: estChunkMsg, OutEst: estChunkMsg,
				},
				InEst: estEntry,
			},
			{
				Name: "Merge", Kind: flow.KindTask,
				Input: flow.InputEntry,
				Fn:    "video-merge", Stage: "dorch-merge", ConsumedMemMB: memMerge,
				InEst: estEntry, OutEst: estEntry,
			},
		},
		MachineName:       fmt.Sprintf("video-dorch-%dw", n),
		OrchConsumedMemMB: mlpipe.MemOrch,
		FuncCount:         3,
		CodeSizeMB:        219,
	}

	graphs := map[flow.Class]*flow.Graph{
		flow.Mono:        mono,
		flow.Machine:     machine,
		flow.DurableOrch: dorch,
	}
	for _, g := range graphs {
		g.Preloads = []flow.Preload{
			{Key: videoKey, Data: payload.Zeros(w.Spec.TotalBytes), Shared: true},
			{Key: modelKey, Data: payload.Zeros(w.Spec.ModelBytes), Shared: true},
		}
	}

	def := &flow.Definition{
		Name:      w.Name(),
		ErrPrefix: "videoproc",
		Graphs:    graphs,
		Bind:      bindStages(w),
		Entry: func(_ flow.Class, run int64) []byte {
			return marshalChunk(chunkMsg{Run: run})
		},
		EntryMap: func(run int64) map[string]any {
			return map[string]any{"run": float64(run)}
		},
		Finish: func(_ []byte) (map[string]any, error) {
			return map[string]any{"frames": float64(w.Spec.Frames)}, nil
		},
		FinishScratchKey: finishScratchKey,
		Speeds: map[string]float64{
			"AWS":   1,
			"Azure": mlpipe.AzureSpeed,
			"GCP":   gcpSpeed,
		},
	}
	if err := flow.Validate(def); err != nil {
		return nil, err
	}
	return def, nil
}

// bindStages builds the per-deployment stage closures: the exact
// pre-IR handler bodies, parameterized only by the binding's blob
// store and provider speed. AWS runs the calibrated costs at full
// speed; GCP bakes its speed into the cost functions; the Azure
// durable activities divide the AWS-speed cost after the fact (the
// pre-IR rounding, which scaling inside would change).
func bindStages(w *Workflow) func(b flow.Binding) (*flow.Stages, error) {
	return func(b flow.Binding) (*flow.Stages, error) {
		env := b.Env
		store := b.Blob
		n := w.Workers
		sp := 1.0
		if b.Provider == "GCP" {
			sp = gcpSpeed
		}
		azSpeed := mlpipe.AzureSpeed
		scale := func(d time.Duration) time.Duration {
			return time.Duration(float64(d) / azSpeed)
		}

		tasks := map[string]flow.StageFn{
			"mono": func(a flow.Act, _ []byte) ([]byte, error) {
				p := a.Proc()
				load := env.Stage(p, "video/load")
				if _, err := store.Get(p, videoKey); err != nil {
					return nil, err
				}
				if _, err := store.Get(p, modelKey); err != nil {
					return nil, err
				}
				load.End(p.Now())
				if b.Provider == "Azure" {
					// One combined busy phase: splitting the scaled sum
					// would change its rounding, so the stage span
					// covers all three.
					process := env.Stage(p, "video/process")
					a.Busy(scale(w.Spec.splitCost(1) + w.Spec.DetectTotal() + w.Spec.mergeCost(1)))
					store.PutShared(p, "videos/output", payload.Zeros(w.Spec.TotalBytes))
					process.End(p.Now())
					return []byte(fmt.Sprintf(`{"frames":%d}`, w.Spec.Frames)), nil
				}
				split := env.Stage(p, "video/split")
				a.Busy(w.Spec.splitCost(1))
				split.End(p.Now())
				detect := env.Stage(p, "video/detect")
				a.Busy(w.Spec.DetectTotal())
				detect.End(p.Now())
				merge := env.Stage(p, "video/merge")
				a.Busy(w.Spec.mergeCost(1))
				store.PutShared(p, "videos/output", payload.Zeros(w.Spec.TotalBytes))
				merge.End(p.Now())
				return []byte(fmt.Sprintf(`{"frames":%d}`, w.Spec.Frames)), nil
			},
			"split": func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parseChunk(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				if _, err := store.Get(p, videoKey); err != nil {
					return nil, err
				}
				a.Busy(w.Spec.splitCost(sp))
				chunks := make([]chunkMsg, n)
				for i := 0; i < n; i++ {
					key := chunkKey(m.Run, i)
					store.PutShared(p, key, payload.Zeros(w.Spec.chunkBytes(i, n)))
					chunks[i] = chunkMsg{Run: m.Run, Key: key, Index: i}
				}
				return json.Marshal(map[string]any{"run": m.Run, "chunks": chunks})
			},
			"detect": func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parseChunk(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				if _, err := store.Get(p, m.Key); err != nil {
					return nil, err
				}
				if _, err := store.Get(p, modelKey); err != nil {
					return nil, err
				}
				a.Busy(w.Spec.detectCost(m.Index, n, sp))
				key := resultKey(m.Run, m.Index)
				store.PutShared(p, key, payload.Zeros(w.Spec.chunkBytes(m.Index, n)))
				return marshalChunk(chunkMsg{Run: m.Run, Key: key, Index: m.Index}), nil
			},
			"merge": func(a flow.Act, input []byte) ([]byte, error) {
				var in struct {
					Results []chunkMsg `json:"results"`
				}
				if err := json.Unmarshal(input, &in); err != nil {
					return nil, err
				}
				p := a.Proc()
				for _, c := range in.Results {
					if _, err := store.Get(p, c.Key); err != nil {
						return nil, err
					}
				}
				a.Busy(w.Spec.mergeCost(sp))
				store.PutShared(p, "videos/output", payload.Zeros(w.Spec.TotalBytes))
				if b.Provider == "GCP" {
					return []byte(`{"merged":true}`), nil
				}
				return []byte(fmt.Sprintf(`{"chunks":%d}`, len(in.Results))), nil
			},
			"dorch-split": func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parseChunk(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				if _, err := store.Get(p, videoKey); err != nil {
					return nil, err
				}
				a.Busy(scale(w.Spec.splitCost(1)))
				for i := 0; i < n; i++ {
					store.PutShared(p, chunkKey(m.Run, i), payload.Zeros(w.Spec.chunkBytes(i, n)))
				}
				return marshalChunk(chunkMsg{Run: m.Run, Index: n}), nil
			},
			"dorch-detect": func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parseChunk(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				if _, err := store.Get(p, chunkKey(m.Run, m.Index)); err != nil {
					return nil, err
				}
				if _, err := store.Get(p, modelKey); err != nil {
					return nil, err
				}
				a.Busy(scale(w.Spec.detectCost(m.Index, n, 1)))
				store.PutShared(p, resultKey(m.Run, m.Index), payload.Zeros(w.Spec.chunkBytes(m.Index, n)))
				// Record this worker's finish time relative to the run
				// start (Table III's per-worker metric).
				if rs := flow.RunStateOf(a); rs != nil {
					rs.RecordFinish(p.Now())
				}
				return marshalChunk(chunkMsg{Run: m.Run, Index: m.Index}), nil
			},
			"dorch-merge": func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parseChunk(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				for i := 0; i < n; i++ {
					if _, err := store.Get(p, resultKey(m.Run, i)); err != nil {
						return nil, err
					}
				}
				a.Busy(scale(w.Spec.mergeCost(1)))
				store.PutShared(p, "videos/output", payload.Zeros(w.Spec.TotalBytes))
				return []byte(fmt.Sprintf(`{"chunks":%d}`, n)), nil
			},
		}

		fans := map[string]flow.FanFn{
			"chunks": func(input []byte) ([][]byte, error) {
				m, err := parseChunk(input)
				if err != nil {
					return nil, err
				}
				items := make([][]byte, n)
				for i := range items {
					items[i] = marshalChunk(chunkMsg{Run: m.Run, Index: i})
				}
				return items, nil
			},
		}

		return &flow.Stages{Tasks: tasks, Fans: fans}, nil
	}
}

// FlowDef exposes the workload's IR for static consumers (the graph
// command, lint, lowering programs).
func (w *Workflow) FlowDef() (*flow.Definition, error) {
	def, err := definition(w)
	if err != nil {
		return nil, err
	}
	flow.OverrideMemMB(def, w.MemMB)
	return def, nil
}
