package mapreduce

import (
	"encoding/json"
	"fmt"
	"time"

	"statebench/internal/flow"
	"statebench/internal/payload"
	"statebench/internal/workloads/mlpipe"
)

// gcpSpeed scales the AWS-calibrated compute costs to a gen-1 Cloud
// Functions instance.
const gcpSpeed = 0.85

// Modeled compute throughputs at AWS speed (bytes/sec of text or
// serialized counts processed).
const (
	splitBW = 120e6 // whitespace-aligned chunking
	countBW = 18e6  // tokenize + tally
	mergeBW = 30e6  // merge serialized count maps
)

// Rough payload sizes on the workflow edges (bytes) for the static
// payload lint: control messages and the fan-out envelopes that carry
// one pointer per mapper or partition.
const (
	estEntry   = 16 // {"run"}
	estItem    = 80 // {"run","key","part"} pointer
	estSummary = 64 // {"distinct","top","words"}
)

func estFan(width int) int { return 32 + width*estItem }

// Consumed memory models (MB).
const (
	memMono    = 768
	memSplit   = 512
	memMap     = 640
	memShuffle = 256
	memReduce  = 640
	memMerge   = 512
)

// definition builds the provider-neutral IR for the MapReduce
// text-processing workflow: splitter → N mappers → shuffle → R
// reducers → merge, in the Mono, Machine, Queue, and DurableOrch
// classes. corpus may be nil for static inspection (graph rendering,
// lint, lowering programs); binding stages requires the corpus.
func definition(w *Workflow, corpus []byte) (*flow.Definition, error) {
	m, r := w.Mappers, w.Reducers
	estMono := float64(w.CorpusBytes) / countBW

	mono := &flow.Graph{
		Class: flow.Mono,
		Start: "Mono",
		Nodes: []*flow.Node{{
			Name: "Mono", Kind: flow.KindTask,
			Fn: "mr-mono", Stage: "mono",
			ConsumedMemMB: memMono, CodeSizeMB: 12.4,
			EstSeconds: estMono,
			InEst:      estEntry, OutEst: estSummary,
		}},
		FuncCount:  1,
		CodeSizeMB: 12.4,
	}

	// pipeline is the orchestrated shape shared by the Machine and
	// DurableOrch classes: both fan out over the splitter's chunk list
	// and the shuffle's partition list, differing only in who drives
	// the graph (a state machine vs. an orchestrator function).
	pipeline := func(class flow.Class) *flow.Graph {
		return &flow.Graph{
			Class: class,
			Start: "Split",
			Nodes: []*flow.Node{
				{
					Name: "Split", Kind: flow.KindTask, Next: "MapWords",
					Fn: "mr-split", Stage: "split",
					ConsumedMemMB: memSplit, CodeSizeMB: 9.8,
					InEst: estEntry, OutEst: estFan(m),
				},
				{
					Name: "MapWords", Kind: flow.KindMap, Next: "Shuffle",
					ItemsField: "chunks", ResultField: "results",
					Join:     flow.JoinEnvelope,
					IterName: "MapChunk",
					Iter: &flow.Node{
						Name: "MapChunk", Kind: flow.KindTask,
						Fn: "mr-map", Stage: "map",
						ConsumedMemMB: memMap, CodeSizeMB: 11.6,
						InEst: estItem, OutEst: estItem,
					},
					InEst: estFan(m), OutEst: estFan(m),
				},
				{
					Name: "Shuffle", Kind: flow.KindTask, Next: "Reduce",
					Fn: "mr-shuffle", Stage: "shuffle",
					ConsumedMemMB: memShuffle, CodeSizeMB: 8.2,
					InEst: estFan(m), OutEst: estFan(r),
				},
				{
					Name: "Reduce", Kind: flow.KindMap, Next: "Merge",
					ItemsField: "partitions", ResultField: "results",
					Join:     flow.JoinEnvelope,
					IterName: "ReducePart",
					Iter: &flow.Node{
						Name: "ReducePart", Kind: flow.KindTask,
						Fn: "mr-reduce", Stage: "reduce",
						ConsumedMemMB: memReduce, CodeSizeMB: 11.6,
						InEst: estItem, OutEst: estItem,
					},
					InEst: estFan(r), OutEst: estFan(r),
				},
				{
					Name: "Merge", Kind: flow.KindTask,
					Fn: "mr-merge", Stage: "merge",
					ConsumedMemMB: memMerge, CodeSizeMB: 9.8,
					InEst: estFan(r), OutEst: estSummary,
				},
			},
			FuncCount:  5,
			CodeSizeMB: 51.0,
		}
	}

	machine := pipeline(flow.Machine)
	machine.MachineName = "mapreduce"
	machine.Comment = "MapReduce text processing (SeBS-Flow): split, map fan-out, shuffle, reduce fan-out, merge"
	machine.RetryAttempts = 5

	dorch := pipeline(flow.DurableOrch)
	dorch.MachineName = "mr-dorch"
	dorch.Variants = []string{"", "n"}
	dorch.OrchConsumedMemMB = mlpipe.MemOrch
	dorch.FuncCount = 6
	dorch.CodeSizeMB = 54.5

	// Queue chains cannot fan out, so the Az-Queue style is the honest
	// linearization: each stage drains its whole tier serially before
	// handing the run to the next queue.
	queue := &flow.Graph{
		Class: flow.Queue,
		Start: "Split",
		Nodes: []*flow.Node{
			{
				Name: "Split", Kind: flow.KindTask, Next: "MapAll",
				Fn: "mr-split", Stage: "split",
				ConsumedMemMB: memSplit,
				InEst:         estEntry, OutEst: estFan(m),
			},
			{
				Name: "MapAll", Kind: flow.KindTask, Next: "ReduceAll",
				Fn: "mr-map-all", Stage: "q-map", QueueName: "mr-map-q",
				ConsumedMemMB: memMap,
				InEst:         estFan(m), OutEst: estEntry,
			},
			{
				Name: "ReduceAll", Kind: flow.KindTask, Next: "Merge",
				Fn: "mr-reduce-all", Stage: "q-reduce", QueueName: "mr-reduce-q",
				ConsumedMemMB: memReduce,
				InEst:         estEntry, OutEst: estEntry,
			},
			{
				Name: "Merge", Kind: flow.KindTask,
				Fn: "mr-merge", Stage: "merge", QueueName: "mr-merge-q",
				ConsumedMemMB: memMerge,
				InEst:         estEntry, OutEst: estSummary,
			},
		},
		FuncCount:  4,
		CodeSizeMB: 44.8,
	}

	graphs := map[flow.Class]*flow.Graph{
		flow.Mono:        mono,
		flow.Machine:     machine,
		flow.Queue:       queue,
		flow.DurableOrch: dorch,
	}
	if corpus != nil {
		for _, g := range graphs {
			g.Preloads = []flow.Preload{{Key: corpusKey, Data: corpus, Shared: true}}
		}
	}

	def := &flow.Definition{
		Name:      "mapreduce",
		ErrPrefix: "mapreduce",
		Graphs:    graphs,
		Bind:      bindStages(w, corpus),
		Entry: func(_ flow.Class, run int64) []byte {
			return marshalMR(mrMsg{Run: run})
		},
		EntryMap: func(run int64) map[string]any {
			return map[string]any{"run": float64(run)}
		},
		Speeds: map[string]float64{
			"AWS":       1,
			"Azure":     mlpipe.AzureSpeed,
			"Netherite": mlpipe.AzureSpeed,
			"GCP":       gcpSpeed,
		},
	}
	if err := flow.Validate(def); err != nil {
		return nil, err
	}
	return def, nil
}

// bindStages builds the stage closures. Every style shares the same
// bodies: compute costs are the modeled throughputs scaled by the
// binding provider's speed, and the word counting is real — the
// payloads each style routes are genuine count documents, so the
// cross-style output equality is a behavioral check, not a formality.
func bindStages(w *Workflow, corpus []byte) func(b flow.Binding) (*flow.Stages, error) {
	return func(b flow.Binding) (*flow.Stages, error) {
		if corpus == nil {
			return nil, fmt.Errorf("mapreduce: binding requires a corpus")
		}
		store := b.Blob
		eng := b.Env.Payload
		m, r := w.Mappers, w.Reducers
		speed := 1.0
		switch b.Provider {
		case "Azure", "Netherite":
			speed = mlpipe.AzureSpeed
		case "GCP":
			speed = gcpSpeed
		}
		busy := func(a flow.Act, nbytes int, bw float64) {
			a.Busy(time.Duration(float64(nbytes) / bw / speed * float64(time.Second)))
		}

		// partitionBufs tokenizes one chunk and serializes its r
		// partitioned count documents, memoized by chunk content: the
		// tokenize-and-tally pass dominates the workload's host-side
		// compute, and every style, memory tier, and repetition maps
		// the same chunk bytes, so a sweep pays for each (chunk, r)
		// exactly once. Cached bytes are identical to a fresh pass, so
		// simulated output never depends on cache state.
		partitionBufs := func(data []byte) ([][]byte, error) {
			key := payload.Key{
				Workload: "mapreduce",
				Stage:    "map/partition",
				Input:    payload.DigestBytes(data),
				Params:   payload.DigestInts(int64(r)),
			}
			bufs, _, err := payload.Get(eng, key, func() ([][]byte, int, error) {
				parts := partitionCounts(countWords(data), r)
				out := make([][]byte, len(parts))
				size := 0
				for j, pc := range parts {
					buf, err := json.Marshal(pc)
					if err != nil {
						return nil, 0, err
					}
					out[j] = buf
					size += len(buf)
				}
				return out, size, nil
			})
			return bufs, err
		}

		// mapChunk counts one chunk and writes its r partition files —
		// the shuffle's storage-level regrouping.
		mapChunk := func(a flow.Act, run int64, part int, data []byte) error {
			busy(a, len(data), countBW)
			bufs, err := partitionBufs(data)
			if err != nil {
				return err
			}
			for j, buf := range bufs {
				store.PutShared(a.Proc(), partKey(run, part, j), buf)
			}
			return nil
		}

		// reducePart merges partition j across all m mappers and writes
		// the partition result.
		reducePart := func(a flow.Act, run int64, j int) error {
			p := a.Proc()
			total := make(map[string]int)
			nbytes := 0
			for i := 0; i < m; i++ {
				buf, err := store.Get(p, partKey(run, i, j))
				if err != nil {
					return err
				}
				nbytes += len(buf)
				var counts map[string]int
				if err := json.Unmarshal(buf, &counts); err != nil {
					return err
				}
				mergeCounts(total, counts)
			}
			busy(a, nbytes, mergeBW)
			out, err := json.Marshal(total)
			if err != nil {
				return err
			}
			store.PutShared(p, reduceKey(run, j), out)
			return nil
		}

		splitBody := func(a flow.Act, input []byte) (mrMsg, []mrMsg, error) {
			msg, err := parseMR(input)
			if err != nil {
				return mrMsg{}, nil, err
			}
			p := a.Proc()
			data, err := store.Get(p, corpusKey)
			if err != nil {
				return mrMsg{}, nil, err
			}
			busy(a, len(data), splitBW)
			items := make([]mrMsg, m)
			for i, chunk := range wordChunks(data, m) {
				key := chunkKey(msg.Run, i)
				store.PutShared(p, key, chunk)
				items[i] = mrMsg{Run: msg.Run, Key: key, Part: i}
			}
			return msg, items, nil
		}

		tasks := map[string]flow.StageFn{
			"mono": func(a flow.Act, _ []byte) ([]byte, error) {
				p := a.Proc()
				data, err := store.Get(p, corpusKey)
				if err != nil {
					return nil, err
				}
				busy(a, len(data), countBW)
				res, err := countCorpus(eng, data)
				if err != nil {
					return nil, err
				}
				store.PutShared(p, resultKey, res.Counts)
				return res.Summary, nil
			},
			"split": func(a flow.Act, input []byte) ([]byte, error) {
				msg, items, err := splitBody(a, input)
				if err != nil {
					return nil, err
				}
				return json.Marshal(map[string]any{"run": msg.Run, "chunks": items})
			},
			"map": func(a flow.Act, input []byte) ([]byte, error) {
				msg, err := parseMR(input)
				if err != nil {
					return nil, err
				}
				data, err := store.Get(a.Proc(), msg.Key)
				if err != nil {
					return nil, err
				}
				if err := mapChunk(a, msg.Run, msg.Part, data); err != nil {
					return nil, err
				}
				return marshalMR(mrMsg{Run: msg.Run, Part: msg.Part}), nil
			},
			"shuffle": func(a flow.Act, input []byte) ([]byte, error) {
				var in struct {
					Results []mrMsg `json:"results"`
				}
				if err := json.Unmarshal(input, &in); err != nil {
					return nil, err
				}
				if len(in.Results) == 0 {
					return nil, fmt.Errorf("mapreduce: shuffle got no map results")
				}
				run := in.Results[0].Run
				// The byte-level regrouping already happened in the
				// mappers' partitioned writes; this step is the control
				// hand-off that builds the reducer work list.
				busy(a, m*r*estItem, mergeBW)
				parts := make([]mrMsg, r)
				for j := range parts {
					parts[j] = mrMsg{Run: run, Part: j}
				}
				return json.Marshal(map[string]any{"partitions": parts, "run": run})
			},
			"reduce": func(a flow.Act, input []byte) ([]byte, error) {
				msg, err := parseMR(input)
				if err != nil {
					return nil, err
				}
				if err := reducePart(a, msg.Run, msg.Part); err != nil {
					return nil, err
				}
				return marshalMR(mrMsg{Run: msg.Run, Part: msg.Part}), nil
			},
			"merge": func(a flow.Act, input []byte) ([]byte, error) {
				var in struct {
					Run     int64   `json:"run"`
					Results []mrMsg `json:"results"`
				}
				if err := json.Unmarshal(input, &in); err != nil {
					return nil, err
				}
				run := in.Run
				if run == 0 && len(in.Results) > 0 {
					run = in.Results[0].Run
				}
				p := a.Proc()
				total := make(map[string]int)
				nbytes := 0
				for j := 0; j < r; j++ {
					buf, err := store.Get(p, reduceKey(run, j))
					if err != nil {
						return nil, err
					}
					nbytes += len(buf)
					var counts map[string]int
					if err := json.Unmarshal(buf, &counts); err != nil {
						return nil, err
					}
					mergeCounts(total, counts)
				}
				busy(a, nbytes, mergeBW)
				out, err := json.Marshal(total)
				if err != nil {
					return nil, err
				}
				store.PutShared(p, resultKey, out)
				return json.Marshal(summarize(total))
			},
			"q-map": func(a flow.Act, input []byte) ([]byte, error) {
				var in struct {
					Run    int64   `json:"run"`
					Chunks []mrMsg `json:"chunks"`
				}
				if err := json.Unmarshal(input, &in); err != nil {
					return nil, err
				}
				p := a.Proc()
				for _, c := range in.Chunks {
					data, err := store.Get(p, c.Key)
					if err != nil {
						return nil, err
					}
					if err := mapChunk(a, c.Run, c.Part, data); err != nil {
						return nil, err
					}
				}
				return marshalMR(mrMsg{Run: in.Run}), nil
			},
			"q-reduce": func(a flow.Act, input []byte) ([]byte, error) {
				msg, err := parseMR(input)
				if err != nil {
					return nil, err
				}
				for j := 0; j < r; j++ {
					if err := reducePart(a, msg.Run, j); err != nil {
						return nil, err
					}
				}
				return marshalMR(mrMsg{Run: msg.Run}), nil
			},
		}

		return &flow.Stages{Tasks: tasks}, nil
	}
}
