package mapreduce

// The test binary links the lowerer registry (the package itself must
// not — see TestPackageImportsNoProviderCode).

import (
	"bytes"
	"encoding/json"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"statebench/internal/core"
	"statebench/internal/flow"
	_ "statebench/internal/flow/lowerers"
	"statebench/internal/sim"
)

// fastShape keeps package tests quick: a small corpus, modest fan-out.
func fastShape() *Workflow { return &Workflow{Mappers: 5, Reducers: 3, CorpusBytes: 200e3} }

// wantStyles is the substitution claim, spelled out: the IR definition
// must lower to every registered style whose class it defines — five
// Mono/Machine/Queue styles plus both Durable task-hub backends —
// across AWS, Azure, and GCP.
var wantStyles = []core.Impl{
	core.AWSLambda,
	core.AWSStep,
	core.AzFunc,
	core.AzQueue,
	core.AzDorch,
	"Az-Dorch-N",
	"GCP-Func",
	"GCP-Wflow",
}

func invokeOnce(t *testing.T, w *Workflow, impl core.Impl) core.RunStats {
	t.Helper()
	env := core.NewEnv(7)
	dep, err := w.Deploy(env, impl)
	if err != nil {
		t.Fatalf("deploy %s: %v", impl, err)
	}
	var stats core.RunStats
	var runErr error
	env.K.Spawn("test", func(p *sim.Proc) {
		defer env.Stop()
		stats, runErr = dep.Runner.Invoke(p, nil)
	})
	env.K.Run()
	if runErr != nil {
		t.Fatalf("invoke %s: %v", impl, runErr)
	}
	if stats.Err != nil {
		t.Fatalf("run error %s: %v", impl, stats.Err)
	}
	return stats
}

func TestExtraImplsCoverAllThreeProviders(t *testing.T) {
	got := New().ExtraImpls()
	if len(got) != len(wantStyles) {
		t.Fatalf("ExtraImpls = %v, want %v", got, wantStyles)
	}
	for i, impl := range wantStyles {
		if got[i] != impl {
			t.Fatalf("ExtraImpls[%d] = %s, want %s (full: %v)", i, got[i], impl, got)
		}
	}
}

// TestEveryStyleComputesTheSameAnswer runs the workload once per style
// and demands byte-identical final outputs, all equal to a direct
// whole-corpus count. Because every payload is a real count document,
// this catches a lowerer that dropped, duplicated, reordered, or
// truncated any fan-out item.
func TestEveryStyleComputesTheSameAnswer(t *testing.T) {
	w := fastShape()
	want, err := json.Marshal(summarize(countWords(corpusText(w.CorpusBytes))))
	if err != nil {
		t.Fatal(err)
	}
	for _, impl := range wantStyles {
		if !core.SupportsImpl(w, impl) {
			t.Fatalf("%s not supported at the test shape", impl)
		}
		stats := invokeOnce(t, w, impl)
		if !bytes.Equal(stats.Output, want) {
			t.Fatalf("%s output %s, want %s", impl, stats.Output, want)
		}
		if stats.E2E <= 0 {
			t.Fatalf("%s reported no latency", impl)
		}
	}
}

// TestPackageImportsNoProviderCode statically enforces the tentpole
// claim: the workload is defined purely against the IR. No non-test
// file of this package may import provider code or even the lowerer
// aggregator.
func TestPackageImportsNoProviderCode(t *testing.T) {
	banned := regexp.MustCompile(`statebench/internal/(aws|azure|gcp)(/|"|$)|statebench/internal/flow/lowerers`)
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, file, src, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if banned.MatchString(path) {
				t.Errorf("%s imports %s: the mapreduce workload must stay provider-neutral", file, path)
			}
		}
	}
}

func TestDeployRejectsBadShapes(t *testing.T) {
	env := core.NewEnv(1)
	defer env.Stop()
	for _, w := range []*Workflow{
		{Mappers: 0, Reducers: 4, CorpusBytes: 1000},
		{Mappers: 4, Reducers: 0, CorpusBytes: 1000},
		{Mappers: flow.MaxFanOut + 1, Reducers: 4, CorpusBytes: 1000},
	} {
		if _, err := w.Deploy(env, core.AWSStep); err == nil {
			t.Errorf("Deploy(%+v) succeeded, want error", w)
		}
	}
}

func TestFlowDefValidatesAndCoversFourClasses(t *testing.T) {
	def, err := New().FlowDef()
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []flow.Class{flow.Mono, flow.Machine, flow.Queue, flow.DurableOrch} {
		if def.Graphs[class] == nil {
			t.Errorf("definition lacks a %s graph", class)
		}
	}
	if def.Graphs[flow.DurableEnt] != nil {
		t.Error("definition unexpectedly defines a DurableEnt graph")
	}
}

func TestWordChunksPartitionExactly(t *testing.T) {
	corpus := corpusText(50e3)
	whole := countWords(corpus)
	for _, m := range []int{1, 3, 8, 17} {
		chunks := wordChunks(corpus, m)
		if len(chunks) != m {
			t.Fatalf("wordChunks(%d) returned %d chunks", m, len(chunks))
		}
		total := make(map[string]int)
		var nbytes int
		for _, c := range chunks {
			mergeCounts(total, countWords(c))
			nbytes += len(c)
		}
		if nbytes != len(corpus) {
			t.Fatalf("m=%d: chunks cover %d of %d bytes", m, nbytes, len(corpus))
		}
		if len(total) != len(whole) {
			t.Fatalf("m=%d: %d distinct words, want %d", m, len(total), len(whole))
		}
		for w, c := range whole {
			if total[w] != c {
				t.Fatalf("m=%d: count[%q] = %d, want %d", m, w, total[w], c)
			}
		}
	}
}

func TestPartitionCountsAreDisjointAndComplete(t *testing.T) {
	counts := countWords(corpusText(20e3))
	parts := partitionCounts(counts, 4)
	merged := make(map[string]int)
	for j, pc := range parts {
		for w, c := range pc {
			if partitionOf(w, 4) != j {
				t.Fatalf("word %q landed in partition %d, belongs in %d", w, j, partitionOf(w, 4))
			}
			if _, dup := merged[w]; dup {
				t.Fatalf("word %q appears in two partitions", w)
			}
			merged[w] = c
		}
	}
	if len(merged) != len(counts) {
		t.Fatalf("partitions carry %d words, want %d", len(merged), len(counts))
	}
}

func TestSummarizeBreaksTiesLexicographically(t *testing.T) {
	s := summarize(map[string]int{"zeta": 3, "alpha": 3, "mid": 2})
	if s.Top != "alpha" || s.Words != 8 || s.Distinct != 3 {
		t.Fatalf("summarize = %+v", s)
	}
}

func TestCorpusTextIsDeterministic(t *testing.T) {
	a, b := corpusText(30e3), corpusText(30e3)
	if !bytes.Equal(a, b) {
		t.Fatal("corpusText is not deterministic")
	}
	if len(a) < 30e3 {
		t.Fatalf("corpus only %d bytes", len(a))
	}
}
