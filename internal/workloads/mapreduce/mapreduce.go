// Package mapreduce implements the SeBS-Flow text-processing workload:
// a splitter fans a text corpus out to N mappers, a shuffle regroups
// the mappers' partitioned word counts, R reducers merge their
// partitions, and a final merge publishes the corpus-wide counts.
//
// The workload exists to prove the flow IR's substitution argument: it
// is defined *only* as a provider-neutral graph (def.go) and runs on
// every registered style across all three providers purely through the
// registered lowerers — this package imports no provider code, not
// even the lowerer aggregator (binaries link lowerers via their other
// workloads; the package tests import the aggregator from the test
// file). Its data-dependent fan-out stresses the payload cache, the
// orchestration payload limits, and scheduling delay in ways the
// paper's two workloads don't: every payload crossing an edge is a
// real JSON document derived from real word counts over a
// deterministic corpus, so a lowerer that corrupted, reordered, or
// truncated a payload changes the final answer.
package mapreduce

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"statebench/internal/core"
	"statebench/internal/flow"
	"statebench/internal/payload"
)

// Workflow is the MapReduce text-processing workload.
type Workflow struct {
	// Mappers is the fan-out width N (one chunk per mapper).
	Mappers int
	// Reducers is the shuffle partition count R.
	Reducers int
	// CorpusBytes is the input text size.
	CorpusBytes int
	// MemMB, when > 0, overrides the provisioned memory tier of every
	// platform task (the optimizer's memory knob); 0 keeps each
	// lowering provider's default.
	MemMB int
}

// New returns the workload at its default shape: 8 mappers, 4
// reducers, a 4 MB corpus.
func New() *Workflow { return &Workflow{Mappers: 8, Reducers: 4, CorpusBytes: 4e6} }

// Name implements core.Workflow.
func (w *Workflow) Name() string { return "mapreduce" }

// Impls implements core.Workflow. MapReduce is not one of the paper's
// figures, so it declares no paper styles: every style it runs on is
// discovered from the lowerer registry via ExtraImpls.
func (w *Workflow) Impls() []core.Impl { return nil }

// ExtraImpls implements core.ExtendedWorkflow: every registered style
// the IR definition lowers to.
func (w *Workflow) ExtraImpls() []core.Impl {
	def, err := definition(w, nil)
	if err != nil {
		return nil
	}
	return flow.Extras(def, nil)
}

// Deploy implements core.Workflow by lowering the IR definition.
func (w *Workflow) Deploy(env *core.Env, impl core.Impl) (*core.Deployment, error) {
	if w.Mappers < 1 || w.Reducers < 1 {
		return nil, fmt.Errorf("mapreduce: mappers and reducers must be >= 1, got %d/%d", w.Mappers, w.Reducers)
	}
	if w.Mappers > flow.MaxFanOut {
		return nil, fmt.Errorf("mapreduce: %d mappers exceed the fan-out limit %d", w.Mappers, flow.MaxFanOut)
	}
	def, err := definition(w, corpusFor(env.Payload, w.CorpusBytes))
	if err != nil {
		return nil, err
	}
	flow.OverrideMemMB(def, w.MemMB)
	return flow.Deploy(env, def, impl)
}

// FlowDef exposes the workload's IR for static consumers (the graph
// command, lint, lowering programs).
func (w *Workflow) FlowDef() (*flow.Definition, error) { return definition(w, nil) }

// Blob keys.
const (
	corpusKey = "datasets/corpus.txt"
	resultKey = "results/wordcount"
)

func chunkKey(run int64, i int) string { return fmt.Sprintf("tmp/mr%06d/chunk-%02d", run, i) }
func partKey(run int64, i, j int) string {
	return fmt.Sprintf("tmp/mr%06d/part-%02d-%02d", run, i, j)
}
func reduceKey(run int64, j int) string { return fmt.Sprintf("tmp/mr%06d/reduce-%02d", run, j) }

// mrMsg is the small JSON control message on the workflow edges; the
// corpus and count bytes travel by blob key.
type mrMsg struct {
	Run  int64  `json:"run"`
	Key  string `json:"key,omitempty"`
	Part int    `json:"part,omitempty"`
}

func marshalMR(m mrMsg) []byte { b, _ := json.Marshal(m); return b }

func parseMR(data []byte) (mrMsg, error) {
	var m mrMsg
	err := json.Unmarshal(data, &m)
	return m, err
}

// summary is the workflow's final answer. Field order matches the
// sorted-key order JSON maps marshal in, so the raw handler output and
// a parse-and-remarshal round trip (the state-machine runners) produce
// identical bytes on every style.
type summary struct {
	Distinct int    `json:"distinct"`
	Top      string `json:"top"`
	Words    int    `json:"words"`
}

// summarize reduces a full count map to the workflow output: total
// words, distinct words, and the most frequent word (ties broken
// lexicographically, so the answer is deterministic).
func summarize(counts map[string]int) summary {
	s := summary{Distinct: len(counts)}
	for w, c := range counts {
		s.Words += c
		if c > counts[s.Top] || (c == counts[s.Top] && (s.Top == "" || w < s.Top)) {
			s.Top = w
		}
	}
	return s
}

// vocab is the deterministic vocabulary the corpus draws from: a core
// of common English words plus derived tokens, large enough that the
// partitioned count documents carry real weight.
var vocab = buildVocab()

func buildVocab() []string {
	base := []string{
		"the", "of", "and", "to", "in", "a", "is", "that", "for", "it",
		"as", "was", "with", "be", "by", "on", "not", "he", "i", "this",
		"are", "or", "his", "from", "at", "which", "but", "have", "an", "had",
		"they", "you",
	}
	out := make([]string, 0, 256)
	out = append(out, base...)
	for i := 0; len(out) < 256; i++ {
		out = append(out, fmt.Sprintf("%s%02d", base[i%len(base)], i))
	}
	return out
}

// corpusFor is corpusText memoized through the Env's payload engine:
// one sweep generates each corpus size exactly once, however many
// campaigns deploy it. The returned bytes are shared and immutable.
func corpusFor(eng *payload.Engine, n int) []byte {
	key := payload.Key{
		Workload: "mapreduce",
		Stage:    "corpus",
		Input:    payload.DigestInts(int64(n)),
	}
	data, _, _ := payload.Get(eng, key, func() ([]byte, int, error) {
		text := corpusText(n)
		return text, len(text), nil
	})
	return data
}

// corpusText generates n bytes of deterministic pseudo-text: an
// xorshift stream picks vocabulary words on a squared (Zipf-flavored)
// distribution. Same n, same bytes — the property every simulated
// measurement and the cross-style output equality rest on.
func corpusText(n int) []byte {
	var b bytes.Buffer
	b.Grow(n + 16)
	x := uint64(0x9E3779B97F4A7C15)
	for b.Len() < n {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		u := float64(x>>11) / (1 << 53)
		b.WriteString(vocab[int(u*u*float64(len(vocab)))])
		if (x>>20)%13 == 0 {
			b.WriteByte('\n')
		} else {
			b.WriteByte(' ')
		}
	}
	return b.Bytes()
}

// wordChunks splits the corpus into m whitespace-aligned chunks, so
// per-chunk counts sum exactly to the whole-corpus counts.
func wordChunks(corpus []byte, m int) [][]byte {
	chunks := make([][]byte, m)
	start := 0
	for i := 0; i < m; i++ {
		end := len(corpus)
		if i < m-1 {
			end = len(corpus) * (i + 1) / m
			for end < len(corpus) && corpus[end] != ' ' && corpus[end] != '\n' {
				end++
			}
		}
		if end < start {
			end = start
		}
		chunks[i] = corpus[start:end]
		start = end
	}
	return chunks
}

// corpusCount is the memoized whole-corpus result: the serialized
// count document the monolith publishes and the workflow's summary.
type corpusCount struct {
	Counts  []byte
	Summary []byte
}

// countCorpus tallies the whole corpus, memoized by content through
// the deployment's payload engine — the monolith styles of every
// provider, tier, and repetition count the same bytes.
func countCorpus(eng *payload.Engine, data []byte) (corpusCount, error) {
	key := payload.Key{
		Workload: "mapreduce",
		Stage:    "count",
		Input:    payload.DigestBytes(data),
	}
	res, _, err := payload.Get(eng, key, func() (corpusCount, int, error) {
		counts := countWords(data)
		out, err := json.Marshal(counts)
		if err != nil {
			return corpusCount{}, 0, err
		}
		sum, err := json.Marshal(summarize(counts))
		if err != nil {
			return corpusCount{}, 0, err
		}
		return corpusCount{Counts: out, Summary: sum}, len(out) + len(sum), nil
	})
	return res, err
}

// countWords tallies whitespace-separated words.
func countWords(text []byte) map[string]int {
	counts := make(map[string]int)
	for _, w := range bytes.Fields(text) {
		counts[string(w)]++
	}
	return counts
}

// partitionOf assigns a word to one of r shuffle partitions.
func partitionOf(word string, r int) int {
	h := fnv.New32a()
	h.Write([]byte(word))
	return int(h.Sum32() % uint32(r))
}

// partitionCounts splits a count map into r per-partition maps.
func partitionCounts(counts map[string]int, r int) []map[string]int {
	parts := make([]map[string]int, r)
	for j := range parts {
		parts[j] = make(map[string]int)
	}
	for w, c := range counts {
		parts[partitionOf(w, r)][w] = c
	}
	return parts
}

// mergeCounts folds src into dst.
func mergeCounts(dst, src map[string]int) {
	for w, c := range src {
		dst[w] += c
	}
}
