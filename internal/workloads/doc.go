// Package workloads groups the paper's two case studies (§III) as
// cross-platform core.Workflow implementations:
//
//   - mltrain / mlinfer: the machine-learning training and inference
//     pipelines (Fig 2–4), built on mlpipe's real artifacts and cost
//     model, deployable in all six Table II styles.
//   - videoproc: the parallel video-processing pipeline (Fig 5) with a
//     configurable fan-out width.
//
// Each workload enforces the platforms' payload limits by routing
// oversized intermediates through blob storage, exactly as the paper's
// implementations had to.
package workloads
