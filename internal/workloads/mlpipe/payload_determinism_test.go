package mlpipe

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"statebench/internal/mlkit/preprocess"
	"statebench/internal/payload"
)

// artifactsByteEqual compares every serialized payload the pipeline
// produces — the property the cache must preserve is byte-equality, not
// pointer identity.
func artifactsByteEqual(t *testing.T, a, b *Artifacts) {
	t.Helper()
	if !bytes.Equal(a.DatasetCSV, b.DatasetCSV) {
		t.Fatal("DatasetCSV differs")
	}
	if !bytes.Equal(a.TestCSV, b.TestCSV) {
		t.Fatal("TestCSV differs")
	}
	// EncoderBytes is gob of a map-bearing struct: gob writes map
	// entries in Go's randomized iteration order, so two fresh encodes
	// of the very same encoder already differ byte-wise. The cache
	// property for this blob is content equality (same vocabulary,
	// same size), which the decoded comparison pins.
	if len(a.EncoderBytes) != len(b.EncoderBytes) {
		t.Fatalf("EncoderBytes sizes differ: %d vs %d", len(a.EncoderBytes), len(b.EncoderBytes))
	}
	var ea, eb preprocess.OneHotEncoder
	if err := preprocess.Decode(a.EncoderBytes, &ea); err != nil {
		t.Fatal(err)
	}
	if err := preprocess.Decode(b.EncoderBytes, &eb); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ea, eb) {
		t.Fatal("decoded encoders differ")
	}
	if !bytes.Equal(a.ScalerBytes, b.ScalerBytes) {
		t.Fatal("ScalerBytes differs")
	}
	if !bytes.Equal(a.PCABytes, b.PCABytes) {
		t.Fatal("PCABytes differs")
	}
	for _, algo := range Algorithms {
		if !bytes.Equal(a.ModelBytes[algo], b.ModelBytes[algo]) {
			t.Fatalf("ModelBytes[%s] differs", algo)
		}
		if a.ModelMSE[algo] != b.ModelMSE[algo] {
			t.Fatalf("ModelMSE[%s] differs: %v vs %v", algo, a.ModelMSE[algo], b.ModelMSE[algo])
		}
	}
	if a.BestName != b.BestName || a.BestMSE != b.BestMSE {
		t.Fatalf("best model differs: %s/%v vs %s/%v", a.BestName, a.BestMSE, b.BestName, b.BestMSE)
	}
	if a.EncodedBytes != b.EncodedBytes || a.ProjectedBytes != b.ProjectedBytes {
		t.Fatal("intermediate sizes differ")
	}
}

// TestPayloadCacheDeterminism pins the engine's core property on every
// training stage (train plus the three fit/<algo> stages it contains):
// a cached result is byte-equal to a fresh recompute with the cache
// disabled.
func TestPayloadCacheDeterminism(t *testing.T) {
	eng := payload.NewEngine()
	cached, err := TrainWith(eng, Small)
	if err != nil {
		t.Fatal(err)
	}
	again, err := TrainWith(eng, Small)
	if err != nil {
		t.Fatal(err)
	}
	if cached != again {
		t.Fatal("second lookup did not hit the cache")
	}
	fresh, err := TrainWith(payload.Disabled(), Small)
	if err != nil {
		t.Fatal(err)
	}
	artifactsByteEqual(t, cached, fresh)

	// train + 3 fit stages, each computed exactly once.
	s := eng.Stats()
	if s.Misses != 4 {
		t.Fatalf("misses = %d, want 4 (train + %d fit stages)", s.Misses, len(Algorithms))
	}
	if s.Hits != 1 {
		t.Fatalf("hits = %d, want 1", s.Hits)
	}
}

// TestPayloadCacheConcurrentWorkers races 8 campaign workers on one
// fresh engine (run under -race in tier1.5): the pipeline must compute
// exactly once, every worker must see byte-equal artifacts, and the
// stats must match the single-flight accounting.
func TestPayloadCacheConcurrentWorkers(t *testing.T) {
	const workers = 8
	eng := payload.NewEngine()
	results := make([]*Artifacts, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := TrainWith(eng, Small)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = a
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if results[i] == nil {
			t.Fatalf("worker %d got nil artifacts", i)
		}
		artifactsByteEqual(t, results[0], results[i])
	}
	s := eng.Stats()
	if s.Misses != 4 {
		t.Fatalf("misses = %d, want 4: the pipeline recomputed", s.Misses)
	}
	if s.Hits != workers-1 {
		t.Fatalf("hits = %d, want %d", s.Hits, workers-1)
	}
}
