package mlpipe

import (
	"testing"

	"statebench/internal/payload"
)

// BenchmarkPayloadMLTrain measures one cache-cold run of the real small
// training pipeline — a fresh engine every iteration, so nothing is
// memoized — pinning the mlkit scratch/flat-backing allocation work.
func BenchmarkPayloadMLTrain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TrainWith(payload.NewEngine(), Small); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPayloadMLTrainWarm measures the memoized path: every
// iteration after the first is a single cache hit.
func BenchmarkPayloadMLTrainWarm(b *testing.B) {
	eng := payload.NewEngine()
	if _, err := TrainWith(eng, Small); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainWith(eng, Small); err != nil {
			b.Fatal(err)
		}
	}
}
