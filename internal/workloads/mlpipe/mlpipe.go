// Package mlpipe holds the pieces shared by the ML training and
// inference workloads: the real (host-side) pipeline computation that
// produces trained artifacts with realistic byte sizes, and the
// calibrated cost model translating each pipeline step into simulated
// execution time on each platform.
//
// The real computation runs once per dataset size (cached) to verify
// the pipeline end to end and to obtain genuine payloads; per-iteration
// simulated durations come from the cost model, scaled by dataset size
// and platform speed, as the paper's Python/sklearn steps would be.
package mlpipe

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"statebench/internal/mlkit/dataframe"
	"statebench/internal/mlkit/decomp"
	"statebench/internal/mlkit/ensemble"
	"statebench/internal/mlkit/linmodel"
	"statebench/internal/mlkit/metrics"
	"statebench/internal/mlkit/modelsel"
	"statebench/internal/mlkit/neighbors"
	"statebench/internal/mlkit/preprocess"
	"statebench/internal/payload"
	"statebench/internal/sim"
)

// DatasetSize selects the paper's two dataset variants.
type DatasetSize string

// Dataset sizes.
const (
	Small DatasetSize = "small" // 200 rows
	Large DatasetSize = "large" // 10,000 rows
)

// Rows returns the dataset's row count.
func (d DatasetSize) Rows() int {
	if d == Small {
		return 200
	}
	return 10000
}

// Algorithms searched by the model-selection step (paper §IV).
var Algorithms = []string{"randomforest", "kneighbors", "lasso"}

// PCAComponents is the dimension-reduction target.
const PCAComponents = 20

// Artifacts is everything the real pipeline produces, with serialized
// forms so workloads move realistic byte payloads.
type Artifacts struct {
	Size DatasetSize

	// Raw dataset as CSV (what the workflows download/transfer).
	DatasetCSV []byte
	// TestCSV is a held-out same-shape dataset for inference runs.
	TestCSV []byte

	Encoder *preprocess.OneHotEncoder
	Scaler  *preprocess.StandardScaler
	PCA     *decomp.PCA

	EncoderBytes []byte
	ScalerBytes  []byte
	PCABytes     []byte

	// EncodedBytes and ProjectedBytes approximate the intermediate
	// dataframe sizes flowing between pipeline steps.
	EncodedBytes   int
	ProjectedBytes int

	// Per-algorithm validation MSE and serialized model.
	ModelMSE   map[string]float64
	ModelBytes map[string][]byte

	BestName string
	BestMSE  float64
}

// Dataset generation seeds (train and held-out test split).
const (
	trainSeed = 20210600
	testSeed  = 20210601
)

// PayloadBytes sums the serialized artifact payloads — what the cache
// accounts under its bytes counter.
func (a *Artifacts) PayloadBytes() int {
	n := len(a.DatasetCSV) + len(a.TestCSV) + len(a.EncoderBytes) + len(a.ScalerBytes) + len(a.PCABytes)
	for _, b := range a.ModelBytes {
		n += len(b)
	}
	return n
}

// Train runs the full real pipeline for the given dataset size,
// memoized through the process-global payload engine (the heavy
// computation happens once per distinct dataset).
func Train(size DatasetSize) (*Artifacts, error) {
	return TrainWith(payload.Shared(), size)
}

// TrainWith is Train memoized through an explicit engine — suite runs
// pass their per-run engine so every campaign (any impl, provider, or
// repetition) reuses one computation, and warm/cold behaviour is
// uniform per run instead of depending on in-process call order. The
// returned Artifacts are shared and must be treated as immutable.
func TrainWith(eng *payload.Engine, size DatasetSize) (*Artifacts, error) {
	key := payload.Key{
		Workload: "mlpipe",
		Stage:    "train",
		Input:    payload.DigestOf("cars", size.Rows(), trainSeed, testSeed),
		Params:   payload.DigestOf("pca", PCAComponents, "split", 0.25, 7, "grid", string(size)),
	}
	a, _, err := payload.Get(eng, key, func() (*Artifacts, int, error) {
		a, err := train(eng, size)
		if err != nil {
			return nil, 0, err
		}
		return a, a.PayloadBytes(), nil
	})
	return a, err
}

func train(eng *payload.Engine, size DatasetSize) (*Artifacts, error) {
	df := dataframe.GenerateCars(size.Rows(), trainSeed)
	test := dataframe.GenerateCars(size.Rows(), testSeed)

	a := &Artifacts{Size: size, ModelMSE: map[string]float64{}, ModelBytes: map[string][]byte{}}
	var err error
	if a.DatasetCSV, err = df.CSVBytes(); err != nil {
		return nil, err
	}
	if a.TestCSV, err = test.CSVBytes(); err != nil {
		return nil, err
	}

	// Feature engineering: drop target, one-hot encode, scale.
	target, ok := df.Column("price")
	if !ok {
		return nil, fmt.Errorf("mlpipe: dataset has no price column")
	}
	y := append([]float64(nil), target.Nums...)
	features, err := df.Drop("price")
	if err != nil {
		return nil, err
	}
	a.Encoder = preprocess.FitOneHot(features)
	encoded, err := a.Encoder.Transform(features)
	if err != nil {
		return nil, err
	}
	X := encoded.NumericMatrix()
	a.Scaler = preprocess.FitStandard(X)
	Xs, err := a.Scaler.Transform(X)
	if err != nil {
		return nil, err
	}
	// Intermediate dataframes travel as CSV text between functions
	// (the paper's Python steps exchanged pandas CSV through storage):
	// ~12 bytes per value.
	a.EncodedBytes = len(Xs) * len(Xs[0]) * 12

	// Dimension reduction.
	if a.PCA, err = decomp.FitPCA(Xs, PCAComponents); err != nil {
		return nil, err
	}
	Xp, err := a.PCA.Transform(Xs)
	if err != nil {
		return nil, err
	}
	a.ProjectedBytes = len(Xp) * PCAComponents * 12

	// Model selection: train each algorithm, score on a held-out split.
	trX, trY, vaX, vaY, err := modelsel.Split(Xp, y, 0.25, 7)
	if err != nil {
		return nil, err
	}
	splitDigest := digestSplit(trX, trY, vaX, vaY)
	best := &modelsel.BestFit{}
	for _, algo := range Algorithms {
		r, err := fitAlgorithm(eng, algo, size, splitDigest, trX, trY, vaX, vaY)
		if err != nil {
			return nil, err
		}
		a.ModelMSE[algo] = r.MSE
		a.ModelBytes[algo] = r.Blob
		best.Report(algo, r.MSE, r.Blob)
	}
	a.BestName = best.Name
	a.BestMSE = best.MSE

	if a.EncoderBytes, err = preprocess.Encode(a.Encoder); err != nil {
		return nil, err
	}
	if a.ScalerBytes, err = preprocess.Encode(a.Scaler); err != nil {
		return nil, err
	}
	if a.PCABytes, err = preprocess.Encode(a.PCA); err != nil {
		return nil, err
	}
	return a, nil
}

// fitResult is the memoized outcome of one model-fit stage.
type fitResult struct {
	MSE  float64
	Blob []byte
}

// fitAlgorithm trains and scores one algorithm on the split, memoized
// under a per-stage key: the input digest addresses the split's
// content, the params digest the full hyper-parameter tuple (rendered
// from the constructed model, so changing the grid invalidates the
// entry automatically).
func fitAlgorithm(eng *payload.Engine, algo string, size DatasetSize, input payload.Digest, trX [][]float64, trY []float64, vaX [][]float64, vaY []float64) (fitResult, error) {
	key := payload.Key{
		Workload: "mlpipe",
		Stage:    "fit/" + algo,
		Input:    input,
		Params:   payload.DigestOf(fmt.Sprintf("%+v", NewModel(algo, size))),
	}
	r, _, err := payload.Get(eng, key, func() (fitResult, int, error) {
		model := NewModel(algo, size)
		if err := model.Fit(trX, trY); err != nil {
			return fitResult{}, 0, fmt.Errorf("mlpipe: fit %s: %w", algo, err)
		}
		pred, err := model.Predict(vaX)
		if err != nil {
			return fitResult{}, 0, err
		}
		mse, err := metrics.MSE(vaY, pred)
		if err != nil {
			return fitResult{}, 0, err
		}
		blob, err := preprocess.Encode(model)
		if err != nil {
			return fitResult{}, 0, fmt.Errorf("mlpipe: encode %s: %w", algo, err)
		}
		return fitResult{MSE: mse, Blob: blob}, len(blob), nil
	})
	return r, err
}

// digestSplit content-addresses the model-selection split: every
// float64 of both matrices and target vectors, plus their shapes.
func digestSplit(trX [][]float64, trY []float64, vaX [][]float64, vaY []float64) payload.Digest {
	h := sha256.New()
	var buf [8]byte
	writeVec := func(v []float64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(v)))
		h.Write(buf[:])
		for _, x := range v {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			h.Write(buf[:])
		}
	}
	writeMat := func(m [][]float64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(m)))
		h.Write(buf[:])
		for _, row := range m {
			writeVec(row)
		}
	}
	writeMat(trX)
	writeVec(trY)
	writeMat(vaX)
	writeVec(vaY)
	var d payload.Digest
	h.Sum(d[:0])
	return d
}

// NewModel constructs a fresh unfitted model for an algorithm name,
// sized for the dataset (mirroring the paper's grid).
func NewModel(algo string, size DatasetSize) linmodel.Regressor {
	switch algo {
	case "randomforest":
		trees, depth := 24, 13
		if size == Small {
			trees, depth = 24, 6
		}
		return &ensemble.RandomForestRegressor{NumTrees: trees, MaxDepth: depth, MinSamplesLeaf: 2, Seed: 13}
	case "kneighbors":
		return &neighbors.KNeighborsRegressor{K: 5}
	case "lasso":
		return &linmodel.Lasso{Alpha: 2.0, MaxIter: 400}
	}
	panic(fmt.Sprintf("mlpipe: unknown algorithm %q", algo))
}

// DecodeModel deserializes a model produced by the training pipeline.
func DecodeModel(algo string, data []byte) (linmodel.Regressor, error) {
	switch algo {
	case "randomforest":
		var m ensemble.RandomForestRegressor
		return &m, preprocess.Decode(data, &m)
	case "kneighbors":
		var m neighbors.KNeighborsRegressor
		return &m, preprocess.Decode(data, &m)
	case "lasso":
		var m linmodel.Lasso
		return &m, preprocess.Decode(data, &m)
	}
	return nil, fmt.Errorf("mlpipe: unknown algorithm %q", algo)
}

// Costs models each step's execution time: the base durations are for
// the large dataset at AWS speed (1.5 GB Lambda); Scale maps dataset
// size, Speed maps platform, and a lognormal factor adds run-to-run
// variance.
type Costs struct {
	// Speed divides durations (>1 is faster). The paper attributes
	// AWS's execution-time edge to its configurable (larger effective)
	// memory; Azure's fixed consumption plan runs the same Python
	// ~25% slower.
	Speed float64
	rng   *sim.RNG
	noise sim.Dist
}

// NewCosts builds a cost model drawing noise from the kernel stream
// named scope.
func NewCosts(k *sim.Kernel, scope string, speed float64) *Costs {
	if speed <= 0 {
		speed = 1
	}
	return &Costs{
		Speed: speed,
		rng:   k.Stream("costs/" + scope),
		noise: sim.LogNormalDist{Median: time.Second, Sigma: 0.07, Max: 2 * time.Second},
	}
}

// factor returns the dataset scaling: sublinear in rows with a floor
// for interpreter/startup overhead.
func factor(size DatasetSize) float64 {
	if size == Small {
		return 0.13
	}
	return 1.0
}

func (c *Costs) jitter() float64 {
	return float64(c.noise.Sample(c.rng)) / float64(time.Second)
}

func (c *Costs) step(base time.Duration, size DatasetSize) time.Duration {
	return time.Duration(float64(base) * factor(size) * c.jitter() / c.Speed)
}

// Prep is data preparation (parse, encode, scale).
func (c *Costs) Prep(size DatasetSize) time.Duration { return c.step(6*time.Second, size) }

// DimRed is the PCA step.
func (c *Costs) DimRed(size DatasetSize) time.Duration { return c.step(7*time.Second, size) }

// TrainModel is per-algorithm training time.
func (c *Costs) TrainModel(algo string, size DatasetSize) time.Duration {
	switch algo {
	case "randomforest":
		return c.step(28*time.Second, size)
	case "kneighbors":
		return c.step(6*time.Second, size)
	case "lasso":
		return c.step(9*time.Second, size)
	}
	return c.step(10*time.Second, size)
}

// SelectBest is the final comparison step.
func (c *Costs) SelectBest(size DatasetSize) time.Duration { return c.step(500*time.Millisecond, size) }

// InferencePrep is the feature-engineering time for one prediction
// batch (InferBatchRows rows — inference serves request batches, not
// bulk scoring, so it does not scale with the training dataset).
func (c *Costs) InferencePrep(DatasetSize) time.Duration {
	return time.Duration(float64(120*time.Millisecond) * c.jitter() / c.Speed)
}

// Predict is the model application time for one prediction batch.
func (c *Costs) Predict(DatasetSize) time.Duration {
	return time.Duration(float64(240*time.Millisecond) * c.jitter() / c.Speed)
}

// TrainAllPartial is the model-selection stage when the three models
// train inside one function: the runtime overlaps them on the worker's
// cores, so the cost is the longest model plus a fraction of the rest
// (the monolith and Az-Queue modelsel stage run this way).
func (c *Costs) TrainAllPartial(size DatasetSize) time.Duration {
	var longest, sum time.Duration
	for _, algo := range Algorithms {
		d := c.TrainModel(algo, size)
		sum += d
		if d > longest {
			longest = d
		}
	}
	return longest + (sum-longest)*3/10
}

// MonolithTrain is the whole pipeline in one function.
func (c *Costs) MonolithTrain(size DatasetSize) time.Duration {
	return c.Prep(size) + c.DimRed(size) + c.TrainAllPartial(size) + c.SelectBest(size)
}

// SerBW is the cross-function serialization/deserialization throughput
// (bytes/sec): the CPU cost of dumping/parsing dataframes at every
// function boundary. It is I/O-library bound and therefore platform
// independent. The monolith keeps data in memory and never pays it —
// the mechanism behind AWS-Step's dataset-dependent overhead (Fig 6b).
const SerBW = 1.0e6

// Xfer returns the serialization cost of moving n bytes across a
// function boundary (one side: serialize on write, deserialize on read).
func (c *Costs) Xfer(n int) time.Duration {
	return time.Duration(float64(n) / SerBW * float64(time.Second))
}

// Platform speed factors (see Costs.Speed). The paper attributes AWS's
// execution edge to its configurable memory (1.5–2 GB Lambdas get full
// vCPUs); Azure's consumption plan ran the same Python ~2.5x slower.
const (
	AWSSpeed   = 1.0
	AzureSpeed = 0.40
)

// InferBatchRows is the prediction batch size served per inference run.
const InferBatchRows = 100

// Consumed memory models (MB) per role — Azure bills these observed
// numbers; AWS bills its configured 1536 MB regardless (Table I).
const (
	MemPrep      = 360
	MemTrain     = 420
	MemSelect    = 160
	MemOrch      = 150
	MemInference = 300
	MemMonolith  = 430
)

// TrainResult is the small JSON summary returned by training runs.
type TrainResult struct {
	Best string  `json:"best"`
	MSE  float64 `json:"mse"`
}

// EncodeResult marshals a TrainResult.
func EncodeResult(best string, mse float64) []byte {
	b, _ := json.Marshal(TrainResult{Best: best, MSE: mse})
	return b
}

// ParseResult unmarshals a TrainResult.
func ParseResult(data []byte) (TrainResult, error) {
	var r TrainResult
	err := json.Unmarshal(data, &r)
	return r, err
}
