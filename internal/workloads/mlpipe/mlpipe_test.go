package mlpipe

import (
	"testing"
	"time"

	"statebench/internal/sim"
)

func TestTrainSmallProducesArtifacts(t *testing.T) {
	a, err := Train(Small)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestName == "" || a.BestMSE <= 0 {
		t.Fatalf("no best model: %q %v", a.BestName, a.BestMSE)
	}
	if len(a.DatasetCSV) == 0 || len(a.TestCSV) == 0 {
		t.Fatal("missing dataset payloads")
	}
	for _, algo := range Algorithms {
		if len(a.ModelBytes[algo]) == 0 {
			t.Fatalf("model %s serialized to zero bytes", algo)
		}
		if a.ModelMSE[algo] <= 0 {
			t.Fatalf("model %s has no score", algo)
		}
	}
	if a.BestMSE > a.ModelMSE["kneighbors"] {
		t.Fatal("best fit is not the minimum MSE")
	}
	if len(a.EncoderBytes) == 0 || len(a.ScalerBytes) == 0 || len(a.PCABytes) == 0 {
		t.Fatal("transformer serialization empty")
	}
}

func TestTrainIsCached(t *testing.T) {
	a1, err := Train(Small)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Train(Small)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("Train not cached")
	}
}

func TestDecodeModelRoundTrip(t *testing.T) {
	a, err := Train(Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range Algorithms {
		m, err := DecodeModel(algo, a.ModelBytes[algo])
		if err != nil {
			t.Fatalf("decode %s: %v", algo, err)
		}
		// The decoded model must predict (smoke test on a synthetic
		// row of the projected width).
		row := make([]float64, PCAComponents)
		if _, err := m.Predict([][]float64{row}); err != nil {
			t.Fatalf("decoded %s cannot predict: %v", algo, err)
		}
	}
	if _, err := DecodeModel("ghost", nil); err == nil {
		t.Fatal("unknown algorithm decoded")
	}
}

func TestCostsScaleWithDatasetAndSpeed(t *testing.T) {
	k := sim.NewKernel(1)
	aws := NewCosts(k, "a", AWSSpeed)
	az := NewCosts(k, "b", AzureSpeed)
	if aws.Prep(Large) <= aws.Prep(Small)*3 {
		t.Fatal("large dataset not slower than small")
	}
	// Average over samples to beat the noise: Azure must be slower.
	var awsSum, azSum time.Duration
	for i := 0; i < 50; i++ {
		awsSum += aws.MonolithTrain(Large)
		azSum += az.MonolithTrain(Large)
	}
	if azSum <= awsSum {
		t.Fatalf("azure (%v) not slower than aws (%v)", azSum, awsSum)
	}
	// RandomForest dominates the model-selection step.
	if aws.TrainModel("randomforest", Large) < aws.TrainModel("lasso", Large) {
		t.Fatal("randomforest not the heavy model")
	}
}

func TestCostsDeterministicPerStream(t *testing.T) {
	mk := func() time.Duration {
		k := sim.NewKernel(7)
		c := NewCosts(k, "x", 1)
		return c.Prep(Large) + c.DimRed(Small)
	}
	if mk() != mk() {
		t.Fatal("cost model not deterministic")
	}
}

func TestResultEncoding(t *testing.T) {
	b := EncodeResult("lasso", 12.5)
	r, err := ParseResult(b)
	if err != nil || r.Best != "lasso" || r.MSE != 12.5 {
		t.Fatalf("round trip: %+v %v", r, err)
	}
	if _, err := ParseResult([]byte("junk")); err == nil {
		t.Fatal("junk parsed")
	}
}
