package mlinfer

import (
	"fmt"
	"time"

	"statebench/internal/flow"
	"statebench/internal/payload"
	"statebench/internal/workloads/mlpipe"
)

// gcpSpeed scales the calibrated AWS-speed compute costs to a gen-1
// Cloud Functions 2 GB instance (2.4 GHz fractional vCPU).
const gcpSpeed = 0.85

// estMsg approximates the {"run","key"} control message each edge
// carries for the static payload lint; batches and artifacts travel by
// blob key.
const estMsg = 96

// definition builds the provider-neutral IR for the ML inference
// workflow. arts may be nil for static inspection; binding stages
// requires real artifacts.
func definition(size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*flow.Definition, error) {
	sfx := "-" + string(size)
	entSfx := "-inf-" + string(size)
	perFnCode := 271.2 / 4

	machineNode := func(name, fn, stage, next string) *flow.Node {
		return &flow.Node{
			Name: name, Kind: flow.KindTask, Next: next,
			Fn: fn + sfx, Stage: stage,
			ConsumedMemMB: mlpipe.MemInference, CodeSizeMB: perFnCode,
			InEst: estMsg, OutEst: estMsg, EstSeconds: 10,
		}
	}
	machine := &flow.Graph{
		Class: flow.Machine,
		Start: "Encode",
		Nodes: []*flow.Node{
			machineNode("Encode", "inf-encode", "encode", "Scale"),
			machineNode("Scale", "inf-scale", "scale", "Decompose"),
			machineNode("Decompose", "inf-decompose", "decompose", "Infer"),
			machineNode("Infer", "inf-predict", "predict", ""),
		},
		MachineName: "ml-inference-" + string(size),
		Comment:     "ML inference workflow (paper Fig 4, AWS variant)",
		FuncCount:   4,
		CodeSizeMB:  271.2,
	}

	entID := func(name string) string { return name + entSfx }
	entities := func() []flow.EntityDecl {
		decls := []flow.EntityDecl{
			{Name: entID("Encoding"), ConsumedMemMB: mlpipe.MemInference,
				Ops: map[string]string{"encode": "ent-encode"}, GetOp: "get", PreloadKey: "shared"},
			{Name: entID("Scalar"), ConsumedMemMB: mlpipe.MemInference,
				Ops: map[string]string{"scale": "ent-scale"}, GetOp: "get", PreloadKey: "shared"},
			{Name: entID("DReduction"), ConsumedMemMB: mlpipe.MemInference,
				Ops: map[string]string{"decompose": "ent-decompose"}, GetOp: "get", PreloadKey: "shared"},
			{Name: entID("ModelSelection"), ConsumedMemMB: mlpipe.MemInference,
				Ops: map[string]string{"predict": "ent-predict"}, GetOp: "get", PreloadKey: "best_fit"},
		}
		if arts != nil {
			decls[0].PreloadState = arts.EncoderBytes
			decls[1].PreloadState = arts.ScalerBytes
			decls[2].PreloadState = arts.PCABytes
			decls[3].PreloadState = marshal(msg{Key: "models/best"})
		}
		return decls
	}

	getBranch := func(name, entity, key string) *flow.Node {
		return &flow.Node{
			Name: name, Kind: flow.KindTask, Input: flow.InputNone,
			Entity: entID(entity), EntityKey: key, Op: "get",
			OutEst: estMsg,
		}
	}
	dorch := &flow.Graph{
		Class: flow.DurableOrch,
		Start: "GetArtifacts",
		Nodes: []*flow.Node{
			{
				// Fetch the pre-trained object references from the
				// entities (Fig 4 lines 9–12) — issued in parallel.
				Name: "GetArtifacts", Kind: flow.KindParallel, Next: "Infer",
				Join: flow.JoinDiscard,
				Branches: []*flow.Node{
					getBranch("GetEncoder", "Encoding", "shared"),
					getBranch("GetScaler", "Scalar", "shared"),
					getBranch("GetPCA", "DReduction", "shared"),
					getBranch("GetModel", "ModelSelection", "best_fit"),
				},
			},
			{
				// Apply everything in the stateless activity (the
				// paper's §IV optimization).
				Name: "Infer", Kind: flow.KindTask,
				Fn: "dorch-infer" + entSfx, Stage: "dorch-infer",
				ConsumedMemMB: mlpipe.MemInference,
				InEst:         estMsg, OutEst: estMsg, EstSeconds: 15,
			},
		},
		MachineName:       "ml-infer-dorch" + entSfx,
		OrchConsumedMemMB: mlpipe.MemOrch,
		FuncCount:         6,
		CodeSizeMB:        304,
		Entities:          entities(),
	}

	entChain := func(name, entity, key, op, next string) *flow.Node {
		return &flow.Node{
			Name: name, Kind: flow.KindTask, Next: next,
			Entity: entID(entity), EntityKey: key, Op: op,
			InEst: estMsg, OutEst: estMsg, EstSeconds: 15,
		}
	}
	dent := &flow.Graph{
		Class: flow.DurableEnt,
		Start: "Encode",
		Nodes: []*flow.Node{
			entChain("Encode", "Encoding", "shared", "encode", "Scale"),
			entChain("Scale", "Scalar", "shared", "scale", "Decompose"),
			entChain("Decompose", "DReduction", "shared", "decompose", "Predict"),
			entChain("Predict", "ModelSelection", "best_fit", "predict", ""),
		},
		MachineName:       "ml-infer-dent" + entSfx,
		OrchConsumedMemMB: mlpipe.MemOrch,
		FuncCount:         7,
		CodeSizeMB:        304,
		Entities:          entities(),
	}

	if arts != nil {
		machine.Preloads = []flow.Preload{
			{Key: testKey(size), Data: batchCSV(arts)},
			{Key: "models/encoder", Data: arts.EncoderBytes},
			{Key: "models/scaler", Data: arts.ScalerBytes},
			{Key: "models/pca", Data: arts.PCABytes},
			{Key: "models/best", Data: arts.ModelBytes[arts.BestName]},
		}
		durablePre := []flow.Preload{
			{Key: "models/best", Data: arts.ModelBytes[arts.BestName]},
			{Key: testKey(size), Data: batchCSV(arts)},
		}
		dorch.Preloads = durablePre
		dent.Preloads = durablePre
	}

	def := &flow.Definition{
		Name:      "ml-inference-" + string(size),
		ErrPrefix: "mlinfer",
		Graphs: map[flow.Class]*flow.Graph{
			flow.Machine:     machine,
			flow.DurableOrch: dorch,
			flow.DurableEnt:  dent,
		},
		Bind: bindStages(size, arts),
		Entry: func(_ flow.Class, run int64) []byte {
			return marshal(msg{Run: run, Key: testKey(size)})
		},
		EntryMap: func(run int64) map[string]any {
			return map[string]any{"run": float64(run), "key": testKey(size)}
		},
		Speeds: map[string]float64{
			"AWS":   mlpipe.AWSSpeed,
			"Azure": mlpipe.AzureSpeed,
			"GCP":   gcpSpeed,
		},
	}
	if err := flow.Validate(def); err != nil {
		return nil, err
	}
	return def, nil
}

// costsScope reproduces the per-deployment cost-model RNG scopes of
// the pre-IR implementations.
func costsScope(b flow.Binding) (scope string, speed float64, err error) {
	switch {
	case b.Provider == "AWS":
		return "aws-mlinfer", mlpipe.AWSSpeed, nil
	case b.Provider == "GCP":
		return "gcp-mlinfer", gcpSpeed, nil
	case b.Class == flow.DurableOrch:
		return "az-mlinfer-dorch", mlpipe.AzureSpeed, nil
	case b.Class == flow.DurableEnt:
		return "az-mlinfer-dent", mlpipe.AzureSpeed, nil
	}
	return "", 0, fmt.Errorf("mlinfer: no cost scope for %s/%s", b.Provider, b.Class)
}

// bindStages builds the per-deployment stage closures: the exact
// pre-IR handler bodies, parameterized by the binding's blob store,
// cost scope, and class.
func bindStages(size mlpipe.DatasetSize, arts *mlpipe.Artifacts) func(b flow.Binding) (*flow.Stages, error) {
	return func(b flow.Binding) (*flow.Stages, error) {
		if arts == nil {
			return nil, fmt.Errorf("mlinfer: binding requires trained artifacts")
		}
		scope, speed, err := costsScope(b)
		if err != nil {
			return nil, err
		}
		store := b.Blob
		costs := mlpipe.NewCosts(b.Env.K, scope, speed)
		third := func() time.Duration { return costs.InferencePrep(size) / 3 }

		// machineStage is the Fig 4 AWS/GCP state body: fetch the input
		// frame and the artifact from remote storage, deserialize, run a
		// third of the feature-engineering compute, stage the output.
		machineStage := func(name, artifact string, outBytes int) flow.StageFn {
			return func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parse(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				if _, err := store.Get(p, m.Key); err != nil {
					return nil, err
				}
				art, err := store.Get(p, artifact)
				if err != nil {
					return nil, err
				}
				a.Busy(rehydrate(len(art)))
				a.Busy(third())
				key := runKey(m.Run, name)
				store.PutShared(p, key, payload.Zeros(outBytes))
				return marshal(msg{Run: m.Run, Key: key}), nil
			}
		}

		// entStage runs one feature-engineering op inside a serialized
		// entity (Az-Dent, with the paper's §V-A compute penalty); on the
		// get-only Az-Dorch deployment compute ops are rejected.
		entStage := func(entity, op, outNm string, outBytes int) flow.StageFn {
			return func(a flow.Act, input []byte) ([]byte, error) {
				if b.Class != flow.DurableEnt {
					return nil, fmt.Errorf("mlinfer: %s: compute op %q on get-only deployment", entity, op)
				}
				m, err := parse(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				if _, err := store.Get(p, m.Key); err != nil {
					return nil, err
				}
				a.Busy(time.Duration(float64(costs.InferencePrep(size)) / 3 * entityComputePenalty))
				key := runKey(m.Run, outNm)
				store.PutShared(p, key, payload.Zeros(outBytes))
				return marshal(msg{Run: m.Run, Key: key}), nil
			}
		}

		entSfx := "-inf-" + string(size)
		warm := false
		tasks := map[string]flow.StageFn{
			"encode":    machineStage("encoded", "models/encoder", batchEncodedBytes()),
			"scale":     machineStage("scaled", "models/scaler", batchEncodedBytes()),
			"decompose": machineStage("projected", "models/pca", batchProjectedBytes()),
			"predict": func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parse(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				if _, err := store.Get(p, m.Key); err != nil {
					return nil, err
				}
				model, err := store.Get(p, "models/best")
				if err != nil {
					return nil, err
				}
				a.Busy(rehydrate(len(model)))
				a.Busy(costs.Predict(size))
				key := runKey(m.Run, "predictions")
				store.PutShared(p, key, payload.Zeros(resultBytes(size)))
				return marshal(msg{Run: m.Run, Key: key}), nil
			},
			// The activity keeps the deserialized objects in process
			// globals after the first run (warm Azure Functions
			// instances), so runs pay only the compute.
			"dorch-infer": func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parse(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				if _, err := store.Get(p, m.Key); err != nil {
					return nil, err
				}
				if !warm {
					model, err := store.Get(p, "models/best")
					if err != nil {
						return nil, err
					}
					a.Busy(rehydrate(len(model) + len(arts.EncoderBytes) + len(arts.ScalerBytes) + len(arts.PCABytes)))
					warm = true
				}
				a.Busy(costs.InferencePrep(size))
				a.Busy(costs.Predict(size))
				key := runKey(m.Run, "predictions")
				store.PutShared(p, key, payload.Zeros(resultBytes(size)))
				return marshal(msg{Run: m.Run, Key: key}), nil
			},
			"ent-encode":    entStage("Encoding"+entSfx, "encode", "encoded", batchEncodedBytes()),
			"ent-scale":     entStage("Scalar"+entSfx, "scale", "scaled", batchEncodedBytes()),
			"ent-decompose": entStage("DReduction"+entSfx, "decompose", "projected", batchProjectedBytes()),
			// Prediction inside the ModelSelection entity applies the warm
			// in-memory model (serialized, so the penalty applies).
			"ent-predict": func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parse(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				if _, err := store.Get(p, m.Key); err != nil {
					return nil, err
				}
				a.Busy(time.Duration(float64(costs.Predict(size)) * entityComputePenalty))
				key := runKey(m.Run, "predictions")
				store.PutShared(p, key, payload.Zeros(resultBytes(size)))
				return marshal(msg{Run: m.Run, Key: key}), nil
			},
		}
		return &flow.Stages{Tasks: tasks}, nil
	}
}

// FlowDef exposes the workload's IR for static consumers; stages are
// unbound.
func (w *Workflow) FlowDef() (*flow.Definition, error) {
	def, err := definition(w.Size, nil)
	if err != nil {
		return nil, err
	}
	flow.OverrideMemMB(def, w.MemMB)
	return def, nil
}
