package mlinfer

import (
	"encoding/json"
	"time"

	"statebench/internal/core"
	"statebench/internal/gcp"
	"statebench/internal/payload"
	"statebench/internal/sim"
	"statebench/internal/workloads/mlpipe"
)

// This file contributes the third provider's orchestrated style to the
// ML inference workload, wired entirely from init (the dispatch table
// in mlinfer.go never mentions GCP).

func init() {
	deployers[gcp.Wflow] = deployGCPWflow
	extraImpls = append(extraImpls, gcp.Wflow)
}

// gcpSpeed scales the calibrated AWS-speed compute costs to a gen-1
// Cloud Functions 2 GB instance (2.4 GHz fractional vCPU).
const gcpSpeed = 0.85

// deployGCPWflow installs the GCP Workflows inference chain: Encode →
// Scale → Decompose → Infer, the same Fig 4 shape as AWS-Step, every
// call fetching its artifact from GCS and the final call fetching +
// deserializing the model.
func deployGCPWflow(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	gc := gcp.FromEnv(env)
	costs := mlpipe.NewCosts(env.K, "gcp-mlinfer", gcpSpeed)
	gcs := gc.GCS
	gcs.Preload(testKey(size), batchCSV(arts))
	gcs.Preload("models/encoder", arts.EncoderBytes)
	gcs.Preload("models/scaler", arts.ScalerBytes)
	gcs.Preload("models/pca", arts.PCABytes)
	gcs.Preload("models/best", arts.ModelBytes[arts.BestName])
	sfx := "-" + string(size)

	stage := func(name, artifact string, busy func() time.Duration, outBytes int) gcp.Handler {
		return func(ctx *gcp.Context, input []byte) ([]byte, error) {
			m, err := parse(input)
			if err != nil {
				return nil, err
			}
			p := ctx.Proc()
			if _, err := gcs.Get(p, m.Key); err != nil {
				return nil, err
			}
			art, err := gcs.Get(p, artifact)
			if err != nil {
				return nil, err
			}
			ctx.Busy(rehydrate(len(art)))
			ctx.Busy(busy())
			key := runKey(m.Run, name)
			gcs.PutShared(p, key, payload.Zeros(outBytes))
			return marshal(msg{Run: m.Run, Key: key}), nil
		}
	}

	type st struct {
		name string
		h    gcp.Handler
	}
	third := func() time.Duration { return costs.InferencePrep(size) / 3 }
	stages := []st{
		{"inf-encode" + sfx, stage("encoded", "models/encoder", third, batchEncodedBytes())},
		{"inf-scale" + sfx, stage("scaled", "models/scaler", third, batchEncodedBytes())},
		{"inf-decompose" + sfx, stage("projected", "models/pca", third, batchProjectedBytes())},
	}
	for _, s := range stages {
		if _, err := gc.Functions.Register(gcp.Config{
			Name: s.name, MemoryMB: 2048, ConsumedMemMB: mlpipe.MemInference, CodeSizeMB: 271.2 / 4, Handler: s.h,
		}); err != nil {
			return nil, err
		}
	}
	if _, err := gc.Functions.Register(gcp.Config{
		Name: "inf-predict" + sfx, MemoryMB: 2048, ConsumedMemMB: mlpipe.MemInference, CodeSizeMB: 271.2 / 4,
		Handler: func(ctx *gcp.Context, input []byte) ([]byte, error) {
			m, err := parse(input)
			if err != nil {
				return nil, err
			}
			p := ctx.Proc()
			if _, err := gcs.Get(p, m.Key); err != nil {
				return nil, err
			}
			model, err := gcs.Get(p, "models/best")
			if err != nil {
				return nil, err
			}
			ctx.Busy(rehydrate(len(model)))
			ctx.Busy(costs.Predict(size))
			key := runKey(m.Run, "predictions")
			gcs.PutShared(p, key, payload.Zeros(resultBytes(size)))
			return marshal(msg{Run: m.Run, Key: key}), nil
		},
	}); err != nil {
		return nil, err
	}

	wfName := "ml-inference-" + string(size)
	chain := []string{"inf-encode" + sfx, "inf-scale" + sfx, "inf-decompose" + sfx, "inf-predict" + sfx}
	def := func(ctx *gcp.Ctx, input map[string]any) (map[string]any, error) {
		run, _ := input["run"].(float64)
		key, _ := input["key"].(string)
		m := msg{Run: int64(run), Key: key}
		for _, fn := range chain {
			out, err := ctx.Call(fn, marshal(m))
			if err != nil {
				return nil, err
			}
			if m, err = parse(out); err != nil {
				return nil, err
			}
		}
		return map[string]any{"run": float64(m.Run), "key": m.Key}, nil
	}
	if err := gc.Workflows.Create(wfName, def); err != nil {
		return nil, err
	}
	return &core.Deployment{Runner: &gwfRunner{gc: gc, wf: wfName, size: size}, FuncCount: 4, CodeSizeMB: 271.2}, nil
}

// gwfRunner executes the GCP inference workflow per run.
type gwfRunner struct {
	gc      *gcp.Cloud
	wf      string
	size    mlpipe.DatasetSize
	nextRun int64
}

// Invoke implements core.Runner.
func (r *gwfRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	r.nextRun++
	exec, err := r.gc.Workflows.Execute(p, r.wf,
		map[string]any{"run": float64(r.nextRun), "key": testKey(r.size)})
	if err != nil {
		return core.RunStats{}, err
	}
	cold := exec.FirstCallDelay
	if cold < 0 {
		cold = 0
	}
	var out []byte
	if exec.Err == nil {
		out, _ = json.Marshal(exec.Output)
	}
	return core.RunStats{E2E: exec.Duration(), ColdStart: cold, Output: out, Err: exec.Err}, nil
}
