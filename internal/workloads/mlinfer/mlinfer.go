// Package mlinfer implements the paper's ML inference workflow (Fig 4):
// feature engineering with the pre-trained transformers, best-model
// lookup, and prediction, in the three styles Fig 9 compares (AWS-Step,
// Az-Dorch, Az-Dent).
//
// The latency asymmetry the paper reports (Azure ≈ 2× faster) has one
// stated mechanism: "the benefit on latency is due to the fact that
// Azure implementations allow the objects to be read from other
// entities, rather than accessing remote slow storage". We reproduce
// it mechanistically: the AWS states fetch the artifacts and the model
// from S3 and deserialize them every run, while the Azure durable
// implementations read them from warm entities. The Az-Dent variant
// additionally runs the feature-engineering operations *inside* the
// serialized entities (Fig 4's call_entity chain), which the paper
// found ~24% slower than Az-Dorch's get-then-stateless-activity
// optimization (§IV).
//
// The workflow is defined once as a provider-neutral flow graph
// (def.go); per-provider deployments are produced by the registered
// flow lowerers, so this package contains zero provider-specific
// deployment code.
package mlinfer

import (
	"encoding/json"
	"fmt"
	"time"

	"statebench/internal/core"
	"statebench/internal/flow"
	_ "statebench/internal/flow/lowerers"
	"statebench/internal/workloads/mlpipe"
)

// RehydrateBW models deserialization throughput of pickled models and
// transformers (bytes/sec) — the per-run cost the AWS path pays.
const RehydrateBW = 0.55e6

// entityComputePenalty slows compute run inside serialized entities
// relative to stateless activities (paper §V-A: entity ops are slower).
const entityComputePenalty = 1.12

// rehydrate returns the time to deserialize a blob of n bytes.
func rehydrate(n int) time.Duration {
	return time.Duration(float64(n) / RehydrateBW * float64(time.Second))
}

// Workflow is the ML inference workload for one dataset size.
type Workflow struct {
	Size mlpipe.DatasetSize
	// MemMB, when > 0, overrides the provisioned memory tier of every
	// platform task (the optimizer's memory knob); 0 keeps each
	// lowering provider's default.
	MemMB int
}

// New returns the inference workload.
func New(size mlpipe.DatasetSize) *Workflow { return &Workflow{Size: size} }

// Name implements core.Workflow.
func (w *Workflow) Name() string { return "ml-inference-" + string(w.Size) }

// Impls implements core.Workflow (the Fig 9 styles).
func (w *Workflow) Impls() []core.Impl {
	return []core.Impl{core.AWSStep, core.AzDorch, core.AzDent}
}

// ExtraImpls implements core.ExtendedWorkflow: every registered
// lowerer the IR supports beyond the Fig 9 set, discovered from the
// flow registry.
func (w *Workflow) ExtraImpls() []core.Impl {
	def, err := definition(w.Size, nil)
	if err != nil {
		return nil
	}
	return flow.Extras(def, w.Impls())
}

// Deploy implements core.Workflow by lowering the IR definition.
func (w *Workflow) Deploy(env *core.Env, impl core.Impl) (*core.Deployment, error) {
	arts, err := mlpipe.TrainWith(env.Payload, w.Size)
	if err != nil {
		return nil, fmt.Errorf("mlinfer: prepare artifacts: %w", err)
	}
	def, err := definition(w.Size, arts)
	if err != nil {
		return nil, err
	}
	flow.OverrideMemMB(def, w.MemMB)
	return flow.Deploy(env, def, impl)
}

func testKey(size mlpipe.DatasetSize) string { return "datasets/cars-batch-" + string(size) + ".csv" }

// batchCSV returns the prediction batch payload (~InferBatchRows rows
// of the held-out dataset).
func batchCSV(arts *mlpipe.Artifacts) []byte {
	limit := mlpipe.InferBatchRows * 330 // ~330 CSV bytes per row
	if limit > len(arts.TestCSV) {
		limit = len(arts.TestCSV)
	}
	return arts.TestCSV[:limit]
}

// Batch-scaled intermediate sizes (CSV text bytes).
func batchEncodedBytes() int   { return mlpipe.InferBatchRows * 45 * 12 }
func batchProjectedBytes() int { return mlpipe.InferBatchRows * mlpipe.PCAComponents * 12 }

type msg struct {
	Run int64  `json:"run"`
	Key string `json:"key,omitempty"`
}

func marshal(m msg) []byte { b, _ := json.Marshal(m); return b }

func parse(data []byte) (msg, error) {
	var m msg
	err := json.Unmarshal(data, &m)
	return m, err
}

func runKey(run int64, name string) string { return fmt.Sprintf("tmp/infer%06d/%s", run, name) }

// resultBytes is the prediction output payload size (one value per
// batch row).
func resultBytes(mlpipe.DatasetSize) int { return mlpipe.InferBatchRows * 12 }
