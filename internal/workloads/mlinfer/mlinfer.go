// Package mlinfer implements the paper's ML inference workflow (Fig 4):
// feature engineering with the pre-trained transformers, best-model
// lookup, and prediction, in the three styles Fig 9 compares (AWS-Step,
// Az-Dorch, Az-Dent).
//
// The latency asymmetry the paper reports (Azure ≈ 2× faster) has one
// stated mechanism: "the benefit on latency is due to the fact that
// Azure implementations allow the objects to be read from other
// entities, rather than accessing remote slow storage". We reproduce
// it mechanistically: the AWS states fetch the artifacts and the model
// from S3 and deserialize them every run, while the Azure durable
// implementations read them from warm entities. The Az-Dent variant
// additionally runs the feature-engineering operations *inside* the
// serialized entities (Fig 4's call_entity chain), which the paper
// found ~24% slower than Az-Dorch's get-then-stateless-activity
// optimization (§IV).
package mlinfer

import (
	"encoding/json"
	"fmt"
	"time"

	"statebench/internal/aws/lambda"
	"statebench/internal/aws/sfn"
	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/core"
	"statebench/internal/payload"
	"statebench/internal/sim"
	"statebench/internal/workloads/mlpipe"
)

// RehydrateBW models deserialization throughput of pickled models and
// transformers (bytes/sec) — the per-run cost the AWS path pays.
const RehydrateBW = 0.55e6

// entityComputePenalty slows compute run inside serialized entities
// relative to stateless activities (paper §V-A: entity ops are slower).
const entityComputePenalty = 1.12

// rehydrate returns the time to deserialize a blob of n bytes.
func rehydrate(n int) time.Duration {
	return time.Duration(float64(n) / RehydrateBW * float64(time.Second))
}

// Workflow is the ML inference workload for one dataset size.
type Workflow struct {
	Size mlpipe.DatasetSize
}

// New returns the inference workload.
func New(size mlpipe.DatasetSize) *Workflow { return &Workflow{Size: size} }

// Name implements core.Workflow.
func (w *Workflow) Name() string { return "ml-inference-" + string(w.Size) }

// Impls implements core.Workflow (the Fig 9 styles).
func (w *Workflow) Impls() []core.Impl {
	return []core.Impl{core.AWSStep, core.AzDorch, core.AzDent}
}

// ExtraImpls implements core.ExtendedWorkflow: deployable styles
// beyond the Fig 9 set, contributed by provider-specific files.
func (w *Workflow) ExtraImpls() []core.Impl { return extraImpls }

// deployFunc installs the workflow for one style.
type deployFunc func(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error)

// deployers routes each style to its deployment routine; provider
// files append additional entries from init.
var deployers = map[core.Impl]deployFunc{
	core.AWSStep: deployAWSStep,
	core.AzDorch: deployAzDorch,
	core.AzDent:  deployAzDent,
}

var extraImpls []core.Impl

// Deploy implements core.Workflow.
func (w *Workflow) Deploy(env *core.Env, impl core.Impl) (*core.Deployment, error) {
	fn, ok := deployers[impl]
	if !ok {
		return nil, &core.UnsupportedImplError{Workflow: w.Name(), Impl: impl}
	}
	arts, err := mlpipe.TrainWith(env.Payload, w.Size)
	if err != nil {
		return nil, fmt.Errorf("mlinfer: prepare artifacts: %w", err)
	}
	return fn(env, w.Size, arts)
}

func testKey(size mlpipe.DatasetSize) string { return "datasets/cars-batch-" + string(size) + ".csv" }

// batchCSV returns the prediction batch payload (~InferBatchRows rows
// of the held-out dataset).
func batchCSV(arts *mlpipe.Artifacts) []byte {
	limit := mlpipe.InferBatchRows * 330 // ~330 CSV bytes per row
	if limit > len(arts.TestCSV) {
		limit = len(arts.TestCSV)
	}
	return arts.TestCSV[:limit]
}

// Batch-scaled intermediate sizes (CSV text bytes).
func batchEncodedBytes() int   { return mlpipe.InferBatchRows * 45 * 12 }
func batchProjectedBytes() int { return mlpipe.InferBatchRows * mlpipe.PCAComponents * 12 }

type msg struct {
	Run int64  `json:"run"`
	Key string `json:"key,omitempty"`
}

func marshal(m msg) []byte { b, _ := json.Marshal(m); return b }

func parse(data []byte) (msg, error) {
	var m msg
	err := json.Unmarshal(data, &m)
	return m, err
}

func runKey(run int64, name string) string { return fmt.Sprintf("tmp/infer%06d/%s", run, name) }

// resultBytes is the prediction output payload size (one value per
// batch row).
func resultBytes(mlpipe.DatasetSize) int { return mlpipe.InferBatchRows * 12 }

// deployAWSStep installs the Step Functions inference chain: Encode →
// Scale → Decompose → Infer, every state fetching its artifact from S3
// and the final state fetching + deserializing the model.
func deployAWSStep(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	costs := mlpipe.NewCosts(env.K, "aws-mlinfer", mlpipe.AWSSpeed)
	s3 := env.AWS.S3
	s3.Preload(testKey(size), batchCSV(arts))
	s3.Preload("models/encoder", arts.EncoderBytes)
	s3.Preload("models/scaler", arts.ScalerBytes)
	s3.Preload("models/pca", arts.PCABytes)
	s3.Preload("models/best", arts.ModelBytes[arts.BestName])
	sfx := "-" + string(size)

	stage := func(name, artifact string, busy func() time.Duration, inBytes, outBytes int) lambda.Handler {
		return func(ctx *lambda.Context, input []byte) ([]byte, error) {
			m, err := parse(input)
			if err != nil {
				return nil, err
			}
			p := ctx.Proc()
			if _, err := s3.Get(p, m.Key); err != nil {
				return nil, err
			}
			art, err := s3.Get(p, artifact)
			if err != nil {
				return nil, err
			}
			ctx.Busy(rehydrate(len(art)))
			ctx.Busy(busy())
			key := runKey(m.Run, name)
			s3.PutShared(p, key, payload.Zeros(outBytes))
			return marshal(msg{Run: m.Run, Key: key}), nil
		}
	}

	type st struct {
		name string
		h    lambda.Handler
	}
	third := func() time.Duration { return costs.InferencePrep(size) / 3 }
	stages := []st{
		{"inf-encode" + sfx, stage("encoded", "models/encoder", third, len(batchCSV(arts)), batchEncodedBytes())},
		{"inf-scale" + sfx, stage("scaled", "models/scaler", third, batchEncodedBytes(), batchEncodedBytes())},
		{"inf-decompose" + sfx, stage("projected", "models/pca", third, batchEncodedBytes(), batchProjectedBytes())},
	}
	for _, s := range stages {
		if _, err := env.AWS.Lambda.Register(lambda.Config{
			Name: s.name, MemoryMB: 1536, ConsumedMemMB: mlpipe.MemInference, CodeSizeMB: 271.2 / 4, Handler: s.h,
		}); err != nil {
			return nil, err
		}
	}
	// Final state: fetch + deserialize the model from S3 (the paper's
	// "slow remote storage" path), then predict.
	if _, err := env.AWS.Lambda.Register(lambda.Config{
		Name: "inf-predict" + sfx, MemoryMB: 1536, ConsumedMemMB: mlpipe.MemInference, CodeSizeMB: 271.2 / 4,
		Handler: func(ctx *lambda.Context, input []byte) ([]byte, error) {
			m, err := parse(input)
			if err != nil {
				return nil, err
			}
			p := ctx.Proc()
			if _, err := s3.Get(p, m.Key); err != nil {
				return nil, err
			}
			model, err := s3.Get(p, "models/best")
			if err != nil {
				return nil, err
			}
			ctx.Busy(rehydrate(len(model)))
			ctx.Busy(costs.Predict(size))
			key := runKey(m.Run, "predictions")
			s3.PutShared(p, key, payload.Zeros(resultBytes(size)))
			return marshal(msg{Run: m.Run, Key: key}), nil
		},
	}); err != nil {
		return nil, err
	}

	machine := &sfn.StateMachine{
		Comment: "ML inference workflow (paper Fig 4, AWS variant)",
		StartAt: "Encode",
		States: map[string]*sfn.State{
			"Encode":    {Type: sfn.TypeTask, Resource: "inf-encode" + sfx, Next: "Scale"},
			"Scale":     {Type: sfn.TypeTask, Resource: "inf-scale" + sfx, Next: "Decompose"},
			"Decompose": {Type: sfn.TypeTask, Resource: "inf-decompose" + sfx, Next: "Infer"},
			"Infer":     {Type: sfn.TypeTask, Resource: "inf-predict" + sfx, End: true},
		},
	}
	smName := "ml-inference-" + string(size)
	if err := env.AWS.SFN.CreateStateMachine(smName, machine); err != nil {
		return nil, err
	}
	return &core.Deployment{Runner: &stepRunner{env: env, machine: smName, size: size}, FuncCount: 4, CodeSizeMB: 271.2}, nil
}

type stepRunner struct {
	env     *core.Env
	machine string
	size    mlpipe.DatasetSize
	nextRun int64
}

// Invoke implements core.Runner.
func (r *stepRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	r.nextRun++
	exec, err := r.env.AWS.SFN.StartExecution(p, r.machine,
		map[string]any{"run": float64(r.nextRun), "key": testKey(r.size)})
	if err != nil {
		return core.RunStats{}, err
	}
	cold := exec.FirstTaskDelay
	if cold < 0 {
		cold = 0
	}
	var out []byte
	if exec.Err == nil {
		out, _ = json.Marshal(exec.Output)
	}
	return core.RunStats{E2E: exec.Duration(), ColdStart: cold, Output: out, Err: exec.Err}, nil
}

// stageEntities registers the pre-trained feature-engineering and
// model-holder entities and preloads their durable state, shared by
// both Azure variants. The entity ops mirror Fig 4: "encode", "scale",
// "decompose", and ModelSelection's "get".
func stageEntities(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts, costs *mlpipe.Costs, inEntity bool) error {
	blob := env.Azure.Blob
	hub := env.Azure.Hub
	sfx := "-inf-" + string(size)
	penalty := 1.0
	if inEntity {
		penalty = entityComputePenalty
	}
	third := func() time.Duration {
		return time.Duration(float64(costs.InferencePrep(size)) / 3 * penalty)
	}

	type spec struct {
		name  string
		op    string
		state []byte
		out   int
		outNm string
	}
	specs := []spec{
		{"Encoding" + sfx, "encode", arts.EncoderBytes, batchEncodedBytes(), "encoded"},
		{"Scalar" + sfx, "scale", arts.ScalerBytes, batchEncodedBytes(), "scaled"},
		{"DReduction" + sfx, "decompose", arts.PCABytes, batchProjectedBytes(), "projected"},
	}
	for _, s := range specs {
		s := s
		fn := func(ctx *durable.EntityContext, op string, input []byte) ([]byte, error) {
			switch op {
			case s.op:
				if !inEntity {
					return nil, fmt.Errorf("mlinfer: %s: compute op %q on get-only deployment", s.name, op)
				}
				m, err := parse(input)
				if err != nil {
					return nil, err
				}
				p := ctx.Proc()
				if _, err := blob.Get(p, m.Key); err != nil {
					return nil, err
				}
				ctx.Busy(third())
				key := runKey(m.Run, s.outNm)
				blob.PutShared(p, key, payload.Zeros(s.out))
				return marshal(msg{Run: m.Run, Key: key}), nil
			case "get":
				return ctx.State(), nil
			}
			return nil, fmt.Errorf("mlinfer: %s: unknown op %q", s.name, op)
		}
		if err := hub.RegisterEntity(s.name, mlpipe.MemInference, fn); err != nil {
			return err
		}
		env.Azure.Hub.InstancesTable().Preload("@"+s.name+"@shared", "state", s.state)
	}

	// ModelSelection entity: holds the winning model reference; "get"
	// returns the small reference, "predict" (Az-Dent) applies the
	// warm in-memory model inside the serialized entity.
	if err := hub.RegisterEntity("ModelSelection"+sfx, mlpipe.MemInference, func(ctx *durable.EntityContext, op string, input []byte) ([]byte, error) {
		switch op {
		case "get":
			return ctx.State(), nil
		case "predict":
			m, err := parse(input)
			if err != nil {
				return nil, err
			}
			p := ctx.Proc()
			if _, err := blob.Get(p, m.Key); err != nil {
				return nil, err
			}
			ctx.Busy(time.Duration(float64(costs.Predict(size)) * entityComputePenalty))
			key := runKey(m.Run, "predictions")
			blob.PutShared(p, key, payload.Zeros(resultBytes(size)))
			return marshal(msg{Run: m.Run, Key: key}), nil
		}
		return nil, fmt.Errorf("mlinfer: ModelSelection: unknown op %q", op)
	}); err != nil {
		return err
	}
	ref := marshal(msg{Key: "models/best"})
	env.Azure.Hub.InstancesTable().Preload("@ModelSelection"+sfx+"@best_fit", "state", ref)
	blob.Preload("models/best", arts.ModelBytes[arts.BestName])
	blob.Preload(testKey(size), batchCSV(arts))
	return nil
}

// deployAzDorch installs the optimized durable variant (paper §IV):
// read the artifacts from the entities with "get", run feature
// engineering and prediction in a stateless activity that holds the
// rehydrated objects warm.
func deployAzDorch(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	costs := mlpipe.NewCosts(env.K, "az-mlinfer-dorch", mlpipe.AzureSpeed)
	if err := stageEntities(env, size, arts, costs, false); err != nil {
		return nil, err
	}
	blob := env.Azure.Blob
	hub := env.Azure.Hub
	sfx := "-inf-" + string(size)

	// The activity keeps the deserialized objects in process globals
	// after the first run (warm Azure Functions instances), so runs pay
	// only the compute.
	warm := false
	if err := hub.RegisterActivity("dorch-infer"+sfx, mlpipe.MemInference, func(ctx *functions.Context, input []byte) ([]byte, error) {
		m, err := parse(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if _, err := blob.Get(p, m.Key); err != nil {
			return nil, err
		}
		if !warm {
			model, err := blob.Get(p, "models/best")
			if err != nil {
				return nil, err
			}
			ctx.Busy(rehydrate(len(model) + len(arts.EncoderBytes) + len(arts.ScalerBytes) + len(arts.PCABytes)))
			warm = true
		}
		ctx.Busy(costs.InferencePrep(size))
		ctx.Busy(costs.Predict(size))
		key := runKey(m.Run, "predictions")
		blob.PutShared(p, key, payload.Zeros(resultBytes(size)))
		return marshal(msg{Run: m.Run, Key: key}), nil
	}); err != nil {
		return nil, err
	}

	orch := "ml-infer-dorch" + sfx
	if err := hub.RegisterOrchestrator(orch, mlpipe.MemOrch, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		ent := func(name, key string) durable.EntityID { return durable.EntityID{Name: name + sfx, Key: key} }
		// Fetch the pre-trained object references from the entities
		// (Fig 4 lines 9–12) — issued in parallel.
		enc := ctx.CallEntity(ent("Encoding", "shared"), "get", nil)
		sca := ctx.CallEntity(ent("Scalar", "shared"), "get", nil)
		pca := ctx.CallEntity(ent("DReduction", "shared"), "get", nil)
		mdl := ctx.CallEntity(ent("ModelSelection", "best_fit"), "get", nil)
		if _, err := ctx.WaitAll(enc, sca, pca, mdl); err != nil {
			return nil, err
		}
		// Apply everything in the stateless activity (the paper's §IV
		// optimization).
		return ctx.CallActivity("dorch-infer"+sfx, input).Await()
	}); err != nil {
		return nil, err
	}
	return &core.Deployment{Runner: &durableRunner{env: env, orch: orch, size: size}, FuncCount: 6, CodeSizeMB: 304}, nil
}

// deployAzDent installs the Fig 4 entity-chain variant: encode, scale,
// and decompose run as serialized entity operations, and prediction
// runs inside the ModelSelection entity.
func deployAzDent(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	costs := mlpipe.NewCosts(env.K, "az-mlinfer-dent", mlpipe.AzureSpeed)
	if err := stageEntities(env, size, arts, costs, true); err != nil {
		return nil, err
	}
	hub := env.Azure.Hub
	sfx := "-inf-" + string(size)

	orch := "ml-infer-dent" + sfx
	if err := hub.RegisterOrchestrator(orch, mlpipe.MemOrch, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		ent := func(name, key string) durable.EntityID { return durable.EntityID{Name: name + sfx, Key: key} }
		encoded, err := ctx.CallEntity(ent("Encoding", "shared"), "encode", input).Await()
		if err != nil {
			return nil, err
		}
		scaled, err := ctx.CallEntity(ent("Scalar", "shared"), "scale", encoded).Await()
		if err != nil {
			return nil, err
		}
		projected, err := ctx.CallEntity(ent("DReduction", "shared"), "decompose", scaled).Await()
		if err != nil {
			return nil, err
		}
		return ctx.CallEntity(ent("ModelSelection", "best_fit"), "predict", projected).Await()
	}); err != nil {
		return nil, err
	}
	return &core.Deployment{Runner: &durableRunner{env: env, orch: orch, size: size}, FuncCount: 7, CodeSizeMB: 304}, nil
}

// durableRunner drives the Azure orchestrations.
type durableRunner struct {
	env     *core.Env
	orch    string
	size    mlpipe.DatasetSize
	nextRun int64
}

// Invoke implements core.Runner.
func (r *durableRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	r.nextRun++
	input := marshal(msg{Run: r.nextRun, Key: testKey(r.size)})
	out, hd, err := r.env.Azure.Client.Run(p, r.orch, input)
	stats := core.RunStats{Output: out, Err: err}
	if hd != nil {
		stats.E2E = hd.E2E()
		stats.ColdStart = hd.ColdStart()
	}
	if hd == nil && err != nil {
		return stats, err
	}
	return stats, nil
}
