package mlinfer

import (
	"testing"

	"statebench/internal/core"
	"statebench/internal/workloads/mlpipe"
)

func measure(t *testing.T, impl core.Impl, iters int) *core.Series {
	t.Helper()
	wf := New(mlpipe.Large)
	opt := core.DefaultMeasureOptions()
	opt.Iters = iters
	opt.Seed = 21
	s, err := core.Measure(wf, impl, opt)
	if err != nil {
		t.Fatalf("measure %s: %v", impl, err)
	}
	if s.Errors != 0 {
		t.Fatalf("%s had %d run errors", impl, s.Errors)
	}
	return s
}

func TestImplsList(t *testing.T) {
	wf := New(mlpipe.Small)
	if len(wf.Impls()) != 3 {
		t.Fatalf("impls = %v", wf.Impls())
	}
	env := core.NewEnv(1)
	if _, err := wf.Deploy(env, core.AzQueue); err == nil {
		t.Fatal("unsupported impl deployed")
	}
}

func TestInferenceRunsOnAllStyles(t *testing.T) {
	for _, impl := range New(mlpipe.Large).Impls() {
		s := measure(t, impl, 5)
		if s.E2E.Median() <= 0 {
			t.Fatalf("%s no latency", impl)
		}
	}
}

func TestAzureFasterThanAWSForInference(t *testing.T) {
	// Paper Fig 9: Azure ≈ 2x faster than AWS-Step because the model
	// comes from warm entities instead of S3 + deserialization.
	aws := measure(t, core.AWSStep, 8)
	dorch := measure(t, core.AzDorch, 8)
	ratio := float64(aws.E2E.Median()) / float64(dorch.E2E.Median())
	if ratio < 1.4 {
		t.Fatalf("AWS/Azure inference ratio = %.2f (aws %v, dorch %v), want >= 1.4",
			ratio, aws.E2E.Median(), dorch.E2E.Median())
	}
}

func TestDentSlowerThanDorch(t *testing.T) {
	// Paper Fig 9: Az-Dent ≈ 24% slower than Az-Dorch (ops inside
	// serialized entities).
	dorch := measure(t, core.AzDorch, 8)
	dent := measure(t, core.AzDent, 8)
	ratio := float64(dent.E2E.Median()) / float64(dorch.E2E.Median())
	if ratio <= 1.05 {
		t.Fatalf("Dent/Dorch ratio = %.2f (dent %v, dorch %v), want > 1.05",
			ratio, dent.E2E.Median(), dorch.E2E.Median())
	}
	if ratio > 2.0 {
		t.Fatalf("Dent/Dorch ratio = %.2f implausibly large", ratio)
	}
}
