// Package mltrain implements the paper's machine-learning training
// workflow (Fig 2–3: data preparation → dimension reduction → parallel
// model selection → best-fit collection) in all six Table II styles.
//
// The workflow is defined once as a provider-neutral flow graph
// (def.go); per-provider deployments are produced by the registered
// flow lowerers, so this package contains zero provider-specific
// deployment code. Real artifacts (datasets, fitted transformers,
// serialized models) come from mlpipe's host-side pipeline; simulated
// execution times come from mlpipe's calibrated cost model; every byte
// that crosses a function boundary is a real payload routed through
// the platform's queues, state machines, or blob storage with limits
// enforced.
package mltrain

import (
	"encoding/json"
	"fmt"

	"statebench/internal/core"
	"statebench/internal/flow"
	_ "statebench/internal/flow/lowerers"
	"statebench/internal/workloads/mlpipe"
)

// Workflow is the ML training workload for one dataset size.
type Workflow struct {
	Size mlpipe.DatasetSize
	// MemMB, when > 0, overrides the provisioned memory tier of every
	// platform task (the optimizer's memory knob); 0 keeps each
	// lowering provider's default. Whether the tier shapes the bill is
	// the provider's ProviderSpec.BillsConfiguredMem.
	MemMB int
}

// New returns the workload for a dataset size.
func New(size mlpipe.DatasetSize) *Workflow { return &Workflow{Size: size} }

// Name implements core.Workflow.
func (w *Workflow) Name() string { return "ml-training-" + string(w.Size) }

// Impls implements core.Workflow: Table II lists all six styles for ML
// training. Styles of additional providers ride on ExtraImpls so the
// paper's figures never see them.
func (w *Workflow) Impls() []core.Impl { return core.AllImpls() }

// ExtraImpls implements core.ExtendedWorkflow: every registered
// lowerer the IR supports beyond Table II, discovered from the flow
// registry — plugging in a provider never edits this package.
func (w *Workflow) ExtraImpls() []core.Impl {
	def, err := definition(w.Size, nil)
	if err != nil {
		return nil
	}
	return flow.Extras(def, core.AllImpls())
}

// Deploy implements core.Workflow by lowering the IR definition.
func (w *Workflow) Deploy(env *core.Env, impl core.Impl) (*core.Deployment, error) {
	arts, err := mlpipe.TrainWith(env.Payload, w.Size)
	if err != nil {
		return nil, fmt.Errorf("mltrain: prepare artifacts: %w", err)
	}
	def, err := definition(w.Size, arts)
	if err != nil {
		return nil, err
	}
	flow.OverrideMemMB(def, w.MemMB)
	return flow.Deploy(env, def, impl)
}

// datasetKey is where the training dataset is staged.
func datasetKey(size mlpipe.DatasetSize) string { return "datasets/cars-" + string(size) + ".csv" }

// stepMsg is the small JSON document passed between workflow steps;
// anything larger than the payload limits travels by blob key.
type stepMsg struct {
	Run   int64   `json:"run"`
	Key   string  `json:"key,omitempty"`
	Algo  string  `json:"algo,omitempty"`
	MSE   float64 `json:"mse,omitempty"`
	Model string  `json:"model,omitempty"`
}

func marshalMsg(m stepMsg) []byte {
	b, _ := json.Marshal(m)
	return b
}

func parseMsg(data []byte) (stepMsg, error) {
	var m stepMsg
	err := json.Unmarshal(data, &m)
	return m, err
}

// runKey namespaces a per-run intermediate blob object.
func runKey(run int64, name string) string { return fmt.Sprintf("tmp/run%06d/%s", run, name) }

// bestModelKey is where the winning model is published.
const bestModelKey = "models/best"
