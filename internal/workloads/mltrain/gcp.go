package mltrain

import (
	"encoding/json"
	"fmt"

	"statebench/internal/core"
	"statebench/internal/gcp"
	"statebench/internal/payload"
	"statebench/internal/sim"
	"statebench/internal/workloads/mlpipe"
)

// This file contributes the third provider's styles to the ML training
// workload. It is wired entirely from init — the dispatch table and
// ExtraImpls in mltrain.go never mention GCP — which is the
// provider-registry seam the refactor exists to prove.

func init() {
	deployers[gcp.Func] = deployGCPFunc
	deployers[gcp.Wflow] = deployGCPWflow
	extraImpls = append(extraImpls, gcp.Func, gcp.Wflow)
}

// gcpSpeed scales the calibrated AWS-speed compute costs to a gen-1
// Cloud Functions 2 GB instance (2.4 GHz fractional vCPU).
const gcpSpeed = 0.85

// deployGCPFunc installs the monolithic single-function implementation
// (the GCP analogue of AWS-Lambda's 1-λ row).
func deployGCPFunc(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	gc := gcp.FromEnv(env)
	costs := mlpipe.NewCosts(env.K, "gcp-mltrain-mono", gcpSpeed)
	gcs := gc.GCS
	gcs.Preload(datasetKey(size), arts.DatasetCSV)

	fnName := "ml-train-mono-" + string(size)
	_, err := gc.Functions.Register(gcp.Config{
		Name:          fnName,
		MemoryMB:      2048,
		ConsumedMemMB: mlpipe.MemMonolith,
		CodeSizeMB:    63.1,
		Handler: func(ctx *gcp.Context, input []byte) ([]byte, error) {
			p := ctx.Proc()
			load := env.Stage(p, "mono/load")
			if _, err := gcs.Get(p, datasetKey(size)); err != nil {
				return nil, err
			}
			load.End(p.Now())
			train := env.Stage(p, "mono/train")
			ctx.Busy(costs.MonolithTrain(size))
			train.End(p.Now())
			publish := env.Stage(p, "mono/publish")
			ctx.Busy(costs.Xfer(len(arts.EncoderBytes) + len(arts.ScalerBytes) + len(arts.PCABytes) + len(arts.ModelBytes[arts.BestName])))
			gcs.Put(p, "models/encoder", arts.EncoderBytes)
			gcs.Put(p, "models/scaler", arts.ScalerBytes)
			gcs.Put(p, "models/pca", arts.PCABytes)
			gcs.Put(p, bestModelKey, arts.ModelBytes[arts.BestName])
			publish.End(p.Now())
			return mlpipe.EncodeResult(arts.BestName, arts.BestMSE), nil
		},
	})
	if err != nil {
		return nil, err
	}
	return &core.Deployment{
		Runner:     &gcfRunner{gc: gc, fn: fnName},
		FuncCount:  1,
		CodeSizeMB: 63.1,
	}, nil
}

// gcfRunner invokes a single Cloud Function synchronously.
type gcfRunner struct {
	gc *gcp.Cloud
	fn string
}

// Invoke implements core.Runner.
func (r *gcfRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	inv, err := r.gc.Functions.Invoke(p, r.fn, nil)
	if err != nil {
		return core.RunStats{}, err
	}
	return core.RunStats{
		E2E:       inv.Total,
		ColdStart: inv.ColdStartDelay,
		ExecTime:  inv.ExecTime,
		Output:    inv.Output,
		Err:       inv.Err,
	}, nil
}

// deployGCPWflow installs the GCP Workflows implementation: Prep →
// DimRed → parallel(train per algorithm) → Select, the same Fig 2-3
// shape as AWS-Step but expressed as code-first workflow steps.
func deployGCPWflow(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	gc := gcp.FromEnv(env)
	costs := mlpipe.NewCosts(env.K, "gcp-mltrain-wflow", gcpSpeed)
	gcs := gc.GCS
	gcs.Preload(datasetKey(size), arts.DatasetCSV)
	perFnCode := 271.2 / 4

	reg := func(name string, memMB, consumed int, h gcp.Handler) error {
		_, err := gc.Functions.Register(gcp.Config{
			Name: name, MemoryMB: memMB, ConsumedMemMB: consumed, CodeSizeMB: perFnCode, Handler: h,
		})
		return err
	}

	sfx := "-" + string(size)
	if err := reg("ml-prep"+sfx, 2048, mlpipe.MemPrep, func(ctx *gcp.Context, input []byte) ([]byte, error) {
		m, err := parseMsg(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if _, err := gcs.Get(p, datasetKey(size)); err != nil {
			return nil, err
		}
		ctx.Busy(costs.Prep(size))
		ctx.Busy(costs.Xfer(arts.EncodedBytes))
		key := runKey(m.Run, "encoded")
		gcs.PutShared(p, key, payload.Zeros(arts.EncodedBytes))
		return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
	}); err != nil {
		return nil, err
	}

	if err := reg("ml-dimred"+sfx, 2048, mlpipe.MemPrep, func(ctx *gcp.Context, input []byte) ([]byte, error) {
		m, err := parseMsg(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if _, err := gcs.Get(p, m.Key); err != nil {
			return nil, err
		}
		ctx.Busy(costs.Xfer(arts.EncodedBytes))
		ctx.Busy(costs.DimRed(size))
		ctx.Busy(costs.Xfer(arts.ProjectedBytes))
		key := runKey(m.Run, "projected")
		gcs.PutShared(p, key, payload.Zeros(arts.ProjectedBytes))
		return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
	}); err != nil {
		return nil, err
	}

	if err := reg("ml-trainmodel"+sfx, 2048, mlpipe.MemTrain, func(ctx *gcp.Context, input []byte) ([]byte, error) {
		m, err := parseMsg(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if _, err := gcs.Get(p, m.Key); err != nil {
			return nil, err
		}
		ctx.Busy(costs.Xfer(arts.ProjectedBytes))
		ctx.Busy(costs.TrainModel(m.Algo, size))
		ctx.Busy(costs.Xfer(len(arts.ModelBytes[m.Algo])))
		modelKey := runKey(m.Run, "model-"+m.Algo)
		gcs.Put(p, modelKey, arts.ModelBytes[m.Algo])
		return marshalMsg(stepMsg{Run: m.Run, Algo: m.Algo, MSE: arts.ModelMSE[m.Algo], Model: modelKey}), nil
	}); err != nil {
		return nil, err
	}

	if err := reg("ml-select"+sfx, 512, mlpipe.MemSelect, func(ctx *gcp.Context, input []byte) ([]byte, error) {
		var in struct {
			Results []stepMsg `json:"results"`
		}
		if err := json.Unmarshal(input, &in); err != nil {
			return nil, err
		}
		if len(in.Results) == 0 {
			return nil, fmt.Errorf("mltrain: select got no results")
		}
		ctx.Busy(costs.SelectBest(size))
		best := in.Results[0]
		for _, r := range in.Results[1:] {
			if r.MSE < best.MSE {
				best = r
			}
		}
		p := ctx.Proc()
		src, err := gcs.Get(p, best.Model)
		if err != nil {
			return nil, err
		}
		ctx.Busy(costs.Xfer(len(src)))
		gcs.Put(p, bestModelKey, src)
		return mlpipe.EncodeResult(best.Algo, best.MSE), nil
	}); err != nil {
		return nil, err
	}

	wfName := "ml-training-" + string(size)
	def := func(ctx *gcp.Ctx, input map[string]any) (map[string]any, error) {
		run, _ := input["run"].(float64)
		out, err := ctx.Call("ml-prep"+sfx, marshalMsg(stepMsg{Run: int64(run)}))
		if err != nil {
			return nil, err
		}
		m, err := parseMsg(out)
		if err != nil {
			return nil, err
		}
		out, err = ctx.Call("ml-dimred"+sfx, marshalMsg(m))
		if err != nil {
			return nil, err
		}
		m, err = parseMsg(out)
		if err != nil {
			return nil, err
		}
		// Parallel branch per algorithm, mirroring AWS-Step's Map state.
		results := make([]stepMsg, len(mlpipe.Algorithms))
		branches := make([]func(*gcp.Ctx) error, len(mlpipe.Algorithms))
		for i, algo := range mlpipe.Algorithms {
			i, algo := i, algo
			item := stepMsg{Run: m.Run, Key: m.Key, Algo: algo}
			branches[i] = func(bc *gcp.Ctx) error {
				bout, berr := bc.Call("ml-trainmodel"+sfx, marshalMsg(item))
				if berr != nil {
					return berr
				}
				results[i], berr = parseMsg(bout)
				return berr
			}
		}
		if err := ctx.Parallel(branches...); err != nil {
			return nil, err
		}
		selIn, err := json.Marshal(map[string]any{"results": results})
		if err != nil {
			return nil, err
		}
		out, err = ctx.Call("ml-select"+sfx, selIn)
		if err != nil {
			return nil, err
		}
		var res map[string]any
		if err := json.Unmarshal(out, &res); err != nil {
			return nil, err
		}
		return res, nil
	}
	if err := gc.Workflows.Create(wfName, def); err != nil {
		return nil, err
	}
	return &core.Deployment{
		Runner:     &gwfRunner{gc: gc, wf: wfName},
		FuncCount:  4,
		CodeSizeMB: 271.2,
	}, nil
}

// gwfRunner executes a GCP workflow per run.
type gwfRunner struct {
	gc      *gcp.Cloud
	wf      string
	nextRun int64
}

// Invoke implements core.Runner.
func (r *gwfRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	r.nextRun++
	exec, err := r.gc.Workflows.Execute(p, r.wf, map[string]any{"run": float64(r.nextRun)})
	if err != nil {
		return core.RunStats{}, err
	}
	var out []byte
	if exec.Err == nil {
		out, _ = json.Marshal(exec.Output)
	}
	cold := exec.FirstCallDelay
	if cold < 0 {
		cold = 0
	}
	return core.RunStats{
		E2E:       exec.Duration(),
		ColdStart: cold,
		Output:    out,
		Err:       exec.Err,
	}, nil
}
