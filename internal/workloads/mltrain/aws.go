package mltrain

import (
	"encoding/json"
	"fmt"

	"statebench/internal/aws/lambda"
	"statebench/internal/aws/sfn"
	"statebench/internal/core"
	"statebench/internal/payload"
	"statebench/internal/sim"
	"statebench/internal/workloads/mlpipe"
)

// deployAWSLambda installs the monolithic single-Lambda implementation
// (Table II: 1 λ, 63.1 MB).
func deployAWSLambda(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	costs := mlpipe.NewCosts(env.K, "aws-mltrain-mono", mlpipe.AWSSpeed)
	s3 := env.AWS.S3
	s3.Preload(datasetKey(size), arts.DatasetCSV)

	fnName := "ml-train-mono-" + string(size)
	_, err := env.AWS.Lambda.Register(lambda.Config{
		Name:          fnName,
		MemoryMB:      1536,
		ConsumedMemMB: mlpipe.MemMonolith,
		CodeSizeMB:    63.1,
		Handler: func(ctx *lambda.Context, input []byte) ([]byte, error) {
			p := ctx.Proc()
			load := env.Stage(p, "mono/load")
			if _, err := s3.Get(p, datasetKey(size)); err != nil {
				return nil, err
			}
			load.End(p.Now())
			train := env.Stage(p, "mono/train")
			ctx.Busy(costs.MonolithTrain(size))
			train.End(p.Now())
			publish := env.Stage(p, "mono/publish")
			ctx.Busy(costs.Xfer(len(arts.EncoderBytes) + len(arts.ScalerBytes) + len(arts.PCABytes) + len(arts.ModelBytes[arts.BestName])))
			s3.Put(p, "models/encoder", arts.EncoderBytes)
			s3.Put(p, "models/scaler", arts.ScalerBytes)
			s3.Put(p, "models/pca", arts.PCABytes)
			s3.Put(p, bestModelKey, arts.ModelBytes[arts.BestName])
			publish.End(p.Now())
			return mlpipe.EncodeResult(arts.BestName, arts.BestMSE), nil
		},
	})
	if err != nil {
		return nil, err
	}
	return &core.Deployment{
		Runner:     &lambdaRunner{env: env, fn: fnName},
		FuncCount:  1,
		CodeSizeMB: 63.1,
	}, nil
}

// lambdaRunner invokes a single Lambda synchronously.
type lambdaRunner struct {
	env *core.Env
	fn  string
}

// Invoke implements core.Runner.
func (r *lambdaRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	inv, err := r.env.AWS.Lambda.Invoke(p, r.fn, nil)
	if err != nil {
		return core.RunStats{}, err
	}
	return core.RunStats{
		E2E:       inv.Total,
		ColdStart: inv.ColdStartDelay,
		ExecTime:  inv.ExecTime,
		Output:    inv.Output,
		Err:       inv.Err,
	}, nil
}

// deployAWSStep installs the Step Functions implementation (Table II:
// 4 λ, 271.2 MB): Prep → DimRed → Map(train per algorithm) → Select.
func deployAWSStep(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	costs := mlpipe.NewCosts(env.K, "aws-mltrain-step", mlpipe.AWSSpeed)
	s3 := env.AWS.S3
	s3.Preload(datasetKey(size), arts.DatasetCSV)
	perFnCode := 271.2 / 4

	reg := func(name string, memMB, consumed int, h lambda.Handler) error {
		_, err := env.AWS.Lambda.Register(lambda.Config{
			Name: name, MemoryMB: memMB, ConsumedMemMB: consumed, CodeSizeMB: perFnCode, Handler: h,
		})
		return err
	}

	sfx := "-" + string(size)
	if err := reg("ml-prep"+sfx, 1536, mlpipe.MemPrep, func(ctx *lambda.Context, input []byte) ([]byte, error) {
		m, err := parseMsg(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if _, err := s3.Get(p, datasetKey(size)); err != nil {
			return nil, err
		}
		ctx.Busy(costs.Prep(size))
		ctx.Busy(costs.Xfer(arts.EncodedBytes))
		key := runKey(m.Run, "encoded")
		s3.PutShared(p, key, payload.Zeros(arts.EncodedBytes))
		return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
	}); err != nil {
		return nil, err
	}

	if err := reg("ml-dimred"+sfx, 1536, mlpipe.MemPrep, func(ctx *lambda.Context, input []byte) ([]byte, error) {
		m, err := parseMsg(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if _, err := s3.Get(p, m.Key); err != nil {
			return nil, err
		}
		ctx.Busy(costs.Xfer(arts.EncodedBytes))
		ctx.Busy(costs.DimRed(size))
		ctx.Busy(costs.Xfer(arts.ProjectedBytes))
		key := runKey(m.Run, "projected")
		s3.PutShared(p, key, payload.Zeros(arts.ProjectedBytes))
		// Emit one Map item per algorithm.
		items := make([]stepMsg, 0, len(mlpipe.Algorithms))
		for _, algo := range mlpipe.Algorithms {
			items = append(items, stepMsg{Run: m.Run, Key: key, Algo: algo})
		}
		out, err := json.Marshal(map[string]any{"run": m.Run, "algos": items})
		return out, err
	}); err != nil {
		return nil, err
	}

	if err := reg("ml-trainmodel"+sfx, 1536, mlpipe.MemTrain, func(ctx *lambda.Context, input []byte) ([]byte, error) {
		m, err := parseMsg(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if _, err := s3.Get(p, m.Key); err != nil {
			return nil, err
		}
		ctx.Busy(costs.Xfer(arts.ProjectedBytes))
		ctx.Busy(costs.TrainModel(m.Algo, size))
		ctx.Busy(costs.Xfer(len(arts.ModelBytes[m.Algo])))
		modelKey := runKey(m.Run, "model-"+m.Algo)
		s3.Put(p, modelKey, arts.ModelBytes[m.Algo])
		return marshalMsg(stepMsg{Run: m.Run, Algo: m.Algo, MSE: arts.ModelMSE[m.Algo], Model: modelKey}), nil
	}); err != nil {
		return nil, err
	}

	if err := reg("ml-select"+sfx, 512, mlpipe.MemSelect, func(ctx *lambda.Context, input []byte) ([]byte, error) {
		var in struct {
			Results []stepMsg `json:"results"`
		}
		if err := json.Unmarshal(input, &in); err != nil {
			return nil, err
		}
		if len(in.Results) == 0 {
			return nil, fmt.Errorf("mltrain: select got no results")
		}
		ctx.Busy(costs.SelectBest(size))
		best := in.Results[0]
		for _, r := range in.Results[1:] {
			if r.MSE < best.MSE {
				best = r
			}
		}
		p := ctx.Proc()
		src, err := s3.Get(p, best.Model)
		if err != nil {
			return nil, err
		}
		ctx.Busy(costs.Xfer(len(src)))
		s3.Put(p, bestModelKey, src)
		return mlpipe.EncodeResult(best.Algo, best.MSE), nil
	}); err != nil {
		return nil, err
	}

	// Task states retry transient failures the way production ASL
	// definitions do. Without injected faults the retriers never fire,
	// so fault-free results are unchanged; under chaos they are what
	// lets AWS-Step recover injected task failures.
	retry := []sfn.RetryPolicy{{ErrorEquals: []string{"States.ALL"}, MaxAttempts: 5}}
	machine := &sfn.StateMachine{
		Comment: "ML training workflow (paper Fig 2-3)",
		StartAt: "Prep",
		States: map[string]*sfn.State{
			"Prep":   {Type: sfn.TypeTask, Resource: "ml-prep" + sfx, Next: "DimRed", Retry: retry},
			"DimRed": {Type: sfn.TypeTask, Resource: "ml-dimred" + sfx, Next: "TrainModels", Retry: retry},
			"TrainModels": {
				Type: sfn.TypeMap, ItemsPath: "$.algos", ResultPath: "$.results", Next: "Select",
				Iterator: &sfn.StateMachine{
					StartAt: "TrainOne",
					States: map[string]*sfn.State{
						"TrainOne": {Type: sfn.TypeTask, Resource: "ml-trainmodel" + sfx, End: true, Retry: retry},
					},
				},
			},
			"Select": {Type: sfn.TypeTask, Resource: "ml-select" + sfx, End: true, Retry: retry},
		},
	}
	smName := "ml-training-" + string(size)
	if err := env.AWS.SFN.CreateStateMachine(smName, machine); err != nil {
		return nil, err
	}
	return &core.Deployment{
		Runner:     &stepRunner{env: env, machine: smName},
		FuncCount:  4,
		CodeSizeMB: 271.2,
	}, nil
}

// stepRunner executes a Step Functions state machine per run.
type stepRunner struct {
	env     *core.Env
	machine string
	nextRun int64
}

// Invoke implements core.Runner.
func (r *stepRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	r.nextRun++
	exec, err := r.env.AWS.SFN.StartExecution(p, r.machine, map[string]any{"run": float64(r.nextRun)})
	if err != nil {
		return core.RunStats{}, err
	}
	var out []byte
	if exec.Err == nil {
		out, _ = json.Marshal(exec.Output)
	}
	cold := exec.FirstTaskDelay
	if cold < 0 {
		cold = 0
	}
	return core.RunStats{
		E2E:       exec.Duration(),
		ColdStart: cold,
		Output:    out,
		Err:       exec.Err,
	}, nil
}
