package mltrain

import (
	"encoding/json"
	"fmt"

	"statebench/internal/flow"
	"statebench/internal/payload"
	"statebench/internal/workloads/mlpipe"
)

// gcpSpeed scales the calibrated AWS-speed compute costs to a gen-1
// Cloud Functions 2 GB instance (2.4 GHz fractional vCPU).
const gcpSpeed = 0.85

// Rough payload sizes on the step edges (bytes) for the static payload
// lint: the small JSON control messages the styles actually exchange.
// Everything larger travels by blob key, which is the design the paper's
// payload limits force.
const (
	estMsg      = 96  // {"run","key"} control message
	estAlgoMsg  = 128 // {"run","key","algo"} fan-out item
	estTrainOut = 192 // {"run","algo","mse","model"} result message
	estFanOut   = 512 // envelope carrying one item per algorithm
	estResults  = 640 // joined results array / envelope
)

// definition builds the provider-neutral IR for the ML training
// workflow. arts may be nil for static inspection (graph rendering,
// lint, lowering programs); binding stages requires real artifacts.
func definition(size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*flow.Definition, error) {
	sfx := "-" + string(size)
	perFnCode := 271.2 / 4

	mono := &flow.Graph{
		Class: flow.Mono,
		Start: "Mono",
		Nodes: []*flow.Node{{
			Name: "Mono", Kind: flow.KindTask,
			Fn: "ml-train-mono" + sfx, Stage: "mono",
			ConsumedMemMB: mlpipe.MemMonolith, CodeSizeMB: 63.1,
			OutEst: estTrainOut, EstSeconds: 30,
		}},
		FuncCount:            1,
		CodeSizeMB:           63.1,
		CodeSizeMBByProvider: map[string]float64{"Azure": 304},
	}

	machine := &flow.Graph{
		Class: flow.Machine,
		Start: "Prep",
		Nodes: []*flow.Node{
			{
				Name: "Prep", Kind: flow.KindTask, Next: "DimRed",
				Fn: "ml-prep" + sfx, Stage: "prep",
				ConsumedMemMB: mlpipe.MemPrep, CodeSizeMB: perFnCode,
				InEst: estMsg, OutEst: estMsg, EstSeconds: 10,
			},
			{
				Name: "DimRed", Kind: flow.KindTask, Next: "TrainModels",
				Fn: "ml-dimred" + sfx, Stage: "dimred-machine",
				ConsumedMemMB: mlpipe.MemPrep, CodeSizeMB: perFnCode,
				InEst: estMsg, OutEst: estFanOut, EstSeconds: 10,
			},
			{
				Name: "TrainModels", Kind: flow.KindMap, Next: "Select",
				Fan: "algos", ItemsField: "algos", ResultField: "results",
				Join: flow.JoinEnvelope, IterName: "TrainOne",
				Iter: &flow.Node{
					Name: "TrainOne", Kind: flow.KindTask,
					Fn: "ml-trainmodel" + sfx, Stage: "train",
					ConsumedMemMB: mlpipe.MemTrain, CodeSizeMB: perFnCode,
					InEst: estAlgoMsg, OutEst: estTrainOut, EstSeconds: 20,
				},
			},
			{
				Name: "Select", Kind: flow.KindTask,
				Fn: "ml-select" + sfx, Stage: "select", MemMB: 512,
				ConsumedMemMB: mlpipe.MemSelect, CodeSizeMB: perFnCode,
				InEst: estResults, OutEst: estMsg, EstSeconds: 5,
			},
		},
		MachineName:   "ml-training-" + string(size),
		Comment:       "ML training workflow (paper Fig 2-3)",
		RetryAttempts: 5,
		FuncCount:     4,
		CodeSizeMB:    271.2,
	}

	queueG := &flow.Graph{
		Class: flow.Queue,
		Start: "Prep",
		Nodes: []*flow.Node{
			{
				Name: "Prep", Kind: flow.KindTask, Next: "DimRed",
				Fn: "mlq-prep" + sfx, Stage: "prep",
				ConsumedMemMB: mlpipe.MemPrep,
				InEst:         estMsg, OutEst: estMsg, EstSeconds: 10,
			},
			{
				Name: "DimRed", Kind: flow.KindTask, Next: "ModelSel",
				Fn: "mlq-dimred" + sfx, Stage: "dimred",
				QueueName:     "ml-dimred-q" + sfx,
				ConsumedMemMB: mlpipe.MemPrep,
				InEst:         estMsg, OutEst: estMsg, EstSeconds: 10,
			},
			{
				Name: "ModelSel", Kind: flow.KindTask, Next: "Select",
				Fn: "mlq-modelsel" + sfx, Stage: "modelsel",
				QueueName:     "ml-modelsel-q" + sfx,
				ConsumedMemMB: mlpipe.MemTrain,
				InEst:         estMsg, OutEst: estTrainOut, EstSeconds: 25,
			},
			{
				Name: "Select", Kind: flow.KindTask,
				Fn: "mlq-select" + sfx, Stage: "queue-select",
				QueueName:     "ml-select-q" + sfx,
				ConsumedMemMB: mlpipe.MemSelect,
				InEst:         estTrainOut, OutEst: estMsg, EstSeconds: 5,
			},
		},
		FuncCount:  4,
		CodeSizeMB: 304,
	}

	dorch := &flow.Graph{
		Class:    flow.DurableOrch,
		Variants: []string{"", "n"},
		Start:    "Prep",
		Nodes: []*flow.Node{
			{
				Name: "Prep", Kind: flow.KindTask, Next: "DimRed",
				Fn: "dorch-prep" + sfx, Stage: "prep",
				ConsumedMemMB: mlpipe.MemPrep,
				InEst:         estMsg, OutEst: estMsg, EstSeconds: 10,
			},
			{
				Name: "DimRed", Kind: flow.KindTask, Next: "TrainModels",
				Fn: "dorch-dimred" + sfx, Stage: "dimred",
				ConsumedMemMB: mlpipe.MemPrep,
				InEst:         estMsg, OutEst: estMsg, EstSeconds: 10,
			},
			{
				Name: "TrainModels", Kind: flow.KindMap, Next: "Select",
				Fan: "algos", Join: flow.JoinArray,
				Iter: &flow.Node{
					Name: "TrainOne", Kind: flow.KindTask,
					Fn: "dorch-train" + sfx, Stage: "train",
					ConsumedMemMB: mlpipe.MemTrain,
					InEst:         estAlgoMsg, OutEst: estTrainOut, EstSeconds: 20,
				},
			},
			{
				Name: "Select", Kind: flow.KindTask,
				Fn: "dorch-select" + sfx, Stage: "dorch-select",
				ConsumedMemMB: mlpipe.MemSelect,
				InEst:         estResults, OutEst: estMsg, EstSeconds: 5,
			},
		},
		MachineName:       "ml-train-dorch" + sfx,
		OrchConsumedMemMB: mlpipe.MemOrch,
		FuncCount:         6,
		CodeSizeMB:        304,
	}

	entID := func(name string) string { return name + sfx }
	dent := &flow.Graph{
		Class:    flow.DurableEnt,
		Variants: []string{"", "n"},
		Start:    "Encode",
		Nodes: []*flow.Node{
			{
				Name: "Encode", Kind: flow.KindTask, Next: "Scale",
				Entity: entID("Encoding"), EntityKey: "shared", Op: "fit",
				InEst: estMsg, OutEst: estMsg, EstSeconds: 10,
			},
			{
				Name: "Scale", Kind: flow.KindTask, Next: "Decompose",
				Entity: entID("Scalar"), EntityKey: "shared", Op: "fit",
				InEst: estMsg, OutEst: estMsg, EstSeconds: 10,
			},
			{
				Name: "Decompose", Kind: flow.KindTask, Next: "TrainAll",
				Entity: entID("DReduction"), EntityKey: "shared", Op: "decompose",
				InEst: estMsg, OutEst: estMsg, EstSeconds: 10,
			},
			{
				Name: "TrainAll", Kind: flow.KindParallel, Next: "Report",
				Join: flow.JoinArray,
				Branches: []*flow.Node{
					{
						Name: "TrainRF", Kind: flow.KindSub,
						InEst: estMsg, OutEst: estTrainOut,
						SubGraph: &flow.Graph{
							Class: flow.DurableOrch,
							Start: "RFTrain",
							Nodes: []*flow.Node{{
								Name: "RFTrain", Kind: flow.KindTask,
								Fn: "dent-rf-train" + sfx, Stage: "train-rf",
								ConsumedMemMB: mlpipe.MemTrain,
								InEst:         estMsg, OutEst: estTrainOut, EstSeconds: 20,
							}},
							MachineName:       "dent-rf-sub" + sfx,
							OrchConsumedMemMB: mlpipe.MemOrch,
						},
					},
					{
						Name: "TrainKNN", Kind: flow.KindTask,
						Entity: entID("KNeighbors"), EntityKey: "shared", Op: "train",
						InEst: estMsg, OutEst: estTrainOut, EstSeconds: 20,
					},
					{
						Name: "TrainLasso", Kind: flow.KindTask,
						Entity: entID("Lasso"), EntityKey: "shared", Op: "train",
						InEst: estMsg, OutEst: estTrainOut, EstSeconds: 20,
					},
				},
			},
			{
				Name: "Report", Kind: flow.KindMap, Next: "GetBest",
				Serial: true, Join: flow.JoinDiscard,
				Iter: &flow.Node{
					Name: "ReportOne", Kind: flow.KindTask,
					Entity: entID("ModelSelection"), EntityKey: "shared", Op: "report",
					InEst: estTrainOut, EstSeconds: 2,
				},
			},
			{
				Name: "GetBest", Kind: flow.KindTask, Next: "Finish",
				Input:  flow.InputNone,
				Entity: entID("ModelSelection"), EntityKey: "shared", Op: "get",
				OutEst: estTrainOut,
			},
			{
				Name: "Finish", Kind: flow.KindTask,
				Pure: true, Stage: "finish",
				InEst: estTrainOut, OutEst: estMsg,
			},
		},
		MachineName:       "ml-train-dent" + sfx,
		OrchConsumedMemMB: mlpipe.MemOrch,
		FuncCount:         7,
		CodeSizeMB:        304,
		Entities: []flow.EntityDecl{
			{Name: entID("Encoding"), ConsumedMemMB: mlpipe.MemPrep, Ops: map[string]string{"fit": "ent-encode"}, GetOp: "get"},
			{Name: entID("Scalar"), ConsumedMemMB: mlpipe.MemPrep, Ops: map[string]string{"fit": "ent-scale"}, GetOp: "get"},
			{Name: entID("DReduction"), ConsumedMemMB: mlpipe.MemPrep, Ops: map[string]string{"decompose": "ent-decompose"}, GetOp: "get"},
			{Name: entID("KNeighbors"), ConsumedMemMB: mlpipe.MemTrain, Ops: map[string]string{"train": "ent-train-kneighbors"}, GetOp: "get"},
			{Name: entID("Lasso"), ConsumedMemMB: mlpipe.MemTrain, Ops: map[string]string{"train": "ent-train-lasso"}, GetOp: "get"},
			{Name: entID("ModelSelection"), ConsumedMemMB: mlpipe.MemSelect, Ops: map[string]string{"report": "ent-report"}, GetOp: "get",
				GetErr: "mltrain: ModelSelection has no model yet"},
		},
	}

	graphs := map[flow.Class]*flow.Graph{
		flow.Mono:        mono,
		flow.Machine:     machine,
		flow.Queue:       queueG,
		flow.DurableOrch: dorch,
		flow.DurableEnt:  dent,
	}
	if arts != nil {
		for _, g := range graphs {
			g.Preloads = []flow.Preload{{Key: datasetKey(size), Data: arts.DatasetCSV}}
		}
	}

	def := &flow.Definition{
		Name:      "ml-training-" + string(size),
		ErrPrefix: "mltrain",
		Graphs:    graphs,
		Bind:      bindStages(size, arts),
		Entry: func(class flow.Class, run int64) []byte {
			if class == flow.Queue {
				return marshalMsg(stepMsg{Run: run, Key: datasetKey(size)})
			}
			return marshalMsg(stepMsg{Run: run})
		},
		EntryMap: func(run int64) map[string]any {
			return map[string]any{"run": float64(run)}
		},
		Speeds: map[string]float64{
			"AWS":       mlpipe.AWSSpeed,
			"Azure":     mlpipe.AzureSpeed,
			"Netherite": mlpipe.AzureSpeed,
			"GCP":       gcpSpeed,
		},
	}
	if err := flow.Validate(def); err != nil {
		return nil, err
	}
	return def, nil
}

// costsScope reproduces the per-deployment cost-model RNG scopes the
// pre-IR implementations used, so every calibrated draw stays on the
// same named stream.
func costsScope(b flow.Binding) (scope string, speed float64, err error) {
	switch b.Provider {
	case "AWS":
		if b.Class == flow.Mono {
			return "aws-mltrain-mono", mlpipe.AWSSpeed, nil
		}
		return "aws-mltrain-step", mlpipe.AWSSpeed, nil
	case "Azure", "Netherite":
		prefix := "az-mltrain"
		if b.Variant == "n" {
			prefix = "az-mltrain-n"
		}
		switch b.Class {
		case flow.Mono:
			return prefix + "-mono", mlpipe.AzureSpeed, nil
		case flow.Queue:
			return prefix + "-queue", mlpipe.AzureSpeed, nil
		case flow.DurableOrch:
			return prefix + "-dorch", mlpipe.AzureSpeed, nil
		case flow.DurableEnt:
			return prefix + "-dent", mlpipe.AzureSpeed, nil
		}
	case "GCP":
		if b.Class == flow.Mono {
			return "gcp-mltrain-mono", gcpSpeed, nil
		}
		return "gcp-mltrain-wflow", gcpSpeed, nil
	}
	return "", 0, fmt.Errorf("mltrain: no cost scope for %s/%s", b.Provider, b.Class)
}

// bindStages builds the per-deployment stage closures: the exact
// pre-IR handler bodies, parameterized only by the binding's blob
// store and cost scope.
func bindStages(size mlpipe.DatasetSize, arts *mlpipe.Artifacts) func(b flow.Binding) (*flow.Stages, error) {
	return func(b flow.Binding) (*flow.Stages, error) {
		if arts == nil {
			return nil, fmt.Errorf("mltrain: binding requires trained artifacts")
		}
		scope, speed, err := costsScope(b)
		if err != nil {
			return nil, err
		}
		env := b.Env
		store := b.Blob
		costs := mlpipe.NewCosts(env.K, scope, speed)

		// dimredCore is the shared PCA step: download the encoded frame,
		// project, stage the projection, answer with its key.
		dimredCore := func(a flow.Act, input []byte) (stepMsg, string, error) {
			m, err := parseMsg(input)
			if err != nil {
				return stepMsg{}, "", err
			}
			p := a.Proc()
			if _, err := store.Get(p, m.Key); err != nil {
				return stepMsg{}, "", err
			}
			a.Busy(costs.Xfer(arts.EncodedBytes))
			a.Busy(costs.DimRed(size))
			a.Busy(costs.Xfer(arts.ProjectedBytes))
			key := runKey(m.Run, "projected")
			store.PutShared(p, key, payload.Zeros(arts.ProjectedBytes))
			return m, key, nil
		}

		// selectCore publishes the winning model from a picked result.
		selectCore := func(a flow.Act, best stepMsg) ([]byte, error) {
			p := a.Proc()
			src, err := store.Get(p, best.Model)
			if err != nil {
				return nil, err
			}
			a.Busy(costs.Xfer(len(src)))
			store.Put(p, bestModelKey, src)
			return mlpipe.EncodeResult(best.Algo, best.MSE), nil
		}

		pickBest := func(results []stepMsg) (stepMsg, error) {
			if len(results) == 0 {
				return stepMsg{}, fmt.Errorf("mltrain: select got no results")
			}
			best := results[0]
			for _, r := range results[1:] {
				if r.MSE < best.MSE {
					best = r
				}
			}
			return best, nil
		}

		trainBody := func(a flow.Act, run int64, algo string) ([]byte, error) {
			a.Busy(costs.Xfer(arts.ProjectedBytes))
			a.Busy(costs.TrainModel(algo, size))
			a.Busy(costs.Xfer(len(arts.ModelBytes[algo])))
			modelKey := runKey(run, "model-"+algo)
			store.Put(a.Proc(), modelKey, arts.ModelBytes[algo])
			return marshalMsg(stepMsg{Run: run, Algo: algo, MSE: arts.ModelMSE[algo], Model: modelKey}), nil
		}

		tasks := map[string]flow.StageFn{
			"mono": func(a flow.Act, _ []byte) ([]byte, error) {
				p := a.Proc()
				load := env.Stage(p, "mono/load")
				if _, err := store.Get(p, datasetKey(size)); err != nil {
					return nil, err
				}
				load.End(p.Now())
				train := env.Stage(p, "mono/train")
				a.Busy(costs.MonolithTrain(size))
				train.End(p.Now())
				publish := env.Stage(p, "mono/publish")
				a.Busy(costs.Xfer(len(arts.EncoderBytes) + len(arts.ScalerBytes) + len(arts.PCABytes) + len(arts.ModelBytes[arts.BestName])))
				store.Put(p, "models/encoder", arts.EncoderBytes)
				store.Put(p, "models/scaler", arts.ScalerBytes)
				store.Put(p, "models/pca", arts.PCABytes)
				store.Put(p, bestModelKey, arts.ModelBytes[arts.BestName])
				publish.End(p.Now())
				return mlpipe.EncodeResult(arts.BestName, arts.BestMSE), nil
			},
			"prep": func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parseMsg(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				if _, err := store.Get(p, datasetKey(size)); err != nil {
					return nil, err
				}
				a.Busy(costs.Prep(size))
				a.Busy(costs.Xfer(arts.EncodedBytes))
				key := runKey(m.Run, "encoded")
				store.PutShared(p, key, payload.Zeros(arts.EncodedBytes))
				return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
			},
			"dimred": func(a flow.Act, input []byte) ([]byte, error) {
				m, key, err := dimredCore(a, input)
				if err != nil {
					return nil, err
				}
				return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
			},
			// The machine-class DimRed answers differently per backend:
			// the ASL Map state consumes an {"run","algos"} envelope
			// (ItemsPath), while the Workflows interpreter fans out via
			// the bound "algos" fan on the plain message.
			"dimred-machine": func(a flow.Act, input []byte) ([]byte, error) {
				m, key, err := dimredCore(a, input)
				if err != nil {
					return nil, err
				}
				if b.Provider != "AWS" {
					return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
				}
				// Emit one Map item per algorithm.
				items := make([]stepMsg, 0, len(mlpipe.Algorithms))
				for _, algo := range mlpipe.Algorithms {
					items = append(items, stepMsg{Run: m.Run, Key: key, Algo: algo})
				}
				return json.Marshal(map[string]any{"run": m.Run, "algos": items})
			},
			"train": func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parseMsg(input)
				if err != nil {
					return nil, err
				}
				if _, err := store.Get(a.Proc(), m.Key); err != nil {
					return nil, err
				}
				return trainBody(a, m.Run, m.Algo)
			},
			"select": func(a flow.Act, input []byte) ([]byte, error) {
				var in struct {
					Results []stepMsg `json:"results"`
				}
				if err := json.Unmarshal(input, &in); err != nil {
					return nil, err
				}
				best, err := pickBest(in.Results)
				if err != nil {
					return nil, err
				}
				a.Busy(costs.SelectBest(size))
				return selectCore(a, best)
			},
			"dorch-select": func(a flow.Act, input []byte) ([]byte, error) {
				var results []stepMsg
				if err := json.Unmarshal(input, &results); err != nil {
					return nil, err
				}
				best, err := pickBest(results)
				if err != nil {
					return nil, err
				}
				a.Busy(costs.SelectBest(size))
				return selectCore(a, best)
			},
			"modelsel": func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parseMsg(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				if _, err := store.Get(p, m.Key); err != nil {
					return nil, err
				}
				a.Busy(costs.Xfer(arts.ProjectedBytes))
				// The three models train inside this one function,
				// overlapped on the worker's cores like the monolith.
				a.Busy(costs.TrainAllPartial(size))
				best := stepMsg{Run: m.Run}
				for i, algo := range mlpipe.Algorithms {
					modelKey := runKey(m.Run, "model-"+algo)
					a.Busy(costs.Xfer(len(arts.ModelBytes[algo])))
					store.Put(p, modelKey, arts.ModelBytes[algo])
					if i == 0 || arts.ModelMSE[algo] < best.MSE {
						best = stepMsg{Run: m.Run, Algo: algo, MSE: arts.ModelMSE[algo], Model: modelKey}
					}
				}
				return marshalMsg(best), nil
			},
			"queue-select": func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parseMsg(input)
				if err != nil {
					return nil, err
				}
				a.Busy(costs.SelectBest(size))
				return selectCore(a, m)
			},
			"ent-encode": func(a flow.Act, input []byte) ([]byte, error) {
				sa := a.(flow.StateAct)
				m, err := parseMsg(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				if _, err := store.Get(p, datasetKey(size)); err != nil {
					return nil, err
				}
				a.Busy(costs.Prep(size) * 6 / 10) // encode share of prep
				a.Busy(costs.Xfer(arts.EncodedBytes))
				sa.SetState(arts.EncoderBytes)
				key := runKey(m.Run, "encoded")
				store.PutShared(p, key, payload.Zeros(arts.EncodedBytes))
				return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
			},
			"ent-scale": func(a flow.Act, input []byte) ([]byte, error) {
				sa := a.(flow.StateAct)
				m, err := parseMsg(input)
				if err != nil {
					return nil, err
				}
				p := a.Proc()
				if _, err := store.Get(p, m.Key); err != nil {
					return nil, err
				}
				a.Busy(costs.Xfer(arts.EncodedBytes))
				a.Busy(costs.Prep(size) * 4 / 10) // scale share of prep
				a.Busy(costs.Xfer(arts.EncodedBytes))
				sa.SetState(arts.ScalerBytes)
				key := runKey(m.Run, "scaled")
				store.PutShared(p, key, payload.Zeros(arts.EncodedBytes))
				return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
			},
			"ent-decompose": func(a flow.Act, input []byte) ([]byte, error) {
				sa := a.(flow.StateAct)
				m, key, err := dimredCore(a, input)
				if err != nil {
					return nil, err
				}
				sa.SetState(arts.PCABytes)
				return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
			},
			"train-rf": func(a flow.Act, input []byte) ([]byte, error) {
				m, err := parseMsg(input)
				if err != nil {
					return nil, err
				}
				if _, err := store.Get(a.Proc(), m.Key); err != nil {
					return nil, err
				}
				return trainBody(a, m.Run, "randomforest")
			},
			"ent-report": func(a flow.Act, input []byte) ([]byte, error) {
				sa := a.(flow.StateAct)
				m, err := parseMsg(input)
				if err != nil {
					return nil, err
				}
				a.Busy(costs.SelectBest(size) / 3)
				var cur stepMsg
				if sa.HasState() {
					if err := json.Unmarshal(sa.State(), &cur); err != nil {
						return nil, err
					}
				}
				if !sa.HasState() || m.MSE < cur.MSE {
					sa.SetState(marshalMsg(m))
					p := a.Proc()
					src, err := store.Get(p, m.Model)
					if err != nil {
						return nil, err
					}
					store.Put(p, bestModelKey, src)
				}
				return nil, nil
			},
			"finish": func(_ flow.Act, input []byte) ([]byte, error) {
				best, err := parseMsg(input)
				if err != nil {
					return nil, err
				}
				return mlpipe.EncodeResult(best.Algo, best.MSE), nil
			},
		}
		// Small-model training entities (paper: "for smaller and faster
		// models we used a stateful entity").
		for _, algo := range []string{"kneighbors", "lasso"} {
			algo := algo
			tasks["ent-train-"+algo] = func(a flow.Act, input []byte) ([]byte, error) {
				sa := a.(flow.StateAct)
				m, err := parseMsg(input)
				if err != nil {
					return nil, err
				}
				if _, err := store.Get(a.Proc(), m.Key); err != nil {
					return nil, err
				}
				out, err := trainBody(a, m.Run, algo)
				if err != nil {
					return nil, err
				}
				sa.SetState([]byte(runKey(m.Run, "model-"+algo)))
				return out, nil
			}
		}

		fans := map[string]flow.FanFn{
			// One fan-out item per algorithm, built from the dimred
			// output message.
			"algos": func(input []byte) ([][]byte, error) {
				m, err := parseMsg(input)
				if err != nil {
					return nil, err
				}
				items := make([][]byte, 0, len(mlpipe.Algorithms))
				for _, algo := range mlpipe.Algorithms {
					items = append(items, marshalMsg(stepMsg{Run: m.Run, Key: m.Key, Algo: algo}))
				}
				return items, nil
			},
		}
		return &flow.Stages{Tasks: tasks, Fans: fans}, nil
	}
}

// FlowDef exposes the workload's IR for static consumers (the graph
// subcommand, lint, and lowering-program tests); stages are unbound.
func (w *Workflow) FlowDef() (*flow.Definition, error) {
	def, err := definition(w.Size, nil)
	if err != nil {
		return nil, err
	}
	flow.OverrideMemMB(def, w.MemMB)
	return def, nil
}
