package mltrain

import (
	"fmt"
	"time"

	"statebench/internal/azure/functions"
	"statebench/internal/cloud/queue"
	"statebench/internal/core"
	"statebench/internal/payload"
	"statebench/internal/sim"
	"statebench/internal/workloads/mlpipe"
)

// deployAzFunc installs the monolithic single-Azure-function
// implementation (Table II: 1 λ, 304 MB).
func deployAzFunc(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	costs := mlpipe.NewCosts(env.K, "az-mltrain-mono", mlpipe.AzureSpeed)
	blob := env.Azure.Blob
	blob.Preload(datasetKey(size), arts.DatasetCSV)

	fnName := "ml-train-mono-" + string(size)
	_, err := env.Azure.Host.Register(functions.Config{
		Name:          fnName,
		ConsumedMemMB: mlpipe.MemMonolith,
		Handler: func(ctx *functions.Context, input []byte) ([]byte, error) {
			p := ctx.Proc()
			load := env.Stage(p, "mono/load")
			if _, err := blob.Get(p, datasetKey(size)); err != nil {
				return nil, err
			}
			load.End(p.Now())
			train := env.Stage(p, "mono/train")
			ctx.Busy(costs.MonolithTrain(size))
			train.End(p.Now())
			publish := env.Stage(p, "mono/publish")
			ctx.Busy(costs.Xfer(len(arts.EncoderBytes) + len(arts.ScalerBytes) + len(arts.PCABytes) + len(arts.ModelBytes[arts.BestName])))
			blob.Put(p, "models/encoder", arts.EncoderBytes)
			blob.Put(p, "models/scaler", arts.ScalerBytes)
			blob.Put(p, "models/pca", arts.PCABytes)
			blob.Put(p, bestModelKey, arts.ModelBytes[arts.BestName])
			publish.End(p.Now())
			return mlpipe.EncodeResult(arts.BestName, arts.BestMSE), nil
		},
	})
	if err != nil {
		return nil, err
	}
	return &core.Deployment{
		Runner:     &azFuncRunner{env: env, fn: fnName},
		FuncCount:  1,
		CodeSizeMB: 304,
	}, nil
}

// azFuncRunner drives one HTTP-triggered Azure function.
type azFuncRunner struct {
	env *core.Env
	fn  string
}

// Invoke implements core.Runner.
func (r *azFuncRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	start := p.Now()
	res, err := r.env.Azure.Host.InvokeHTTP(p, r.fn, nil)
	if err != nil {
		return core.RunStats{}, err
	}
	cold := time.Duration(0)
	if res.Cold {
		cold = res.SchedDelay
	}
	return core.RunStats{
		E2E:       p.Now() - start,
		ColdStart: cold,
		ExecTime:  res.ExecTime,
		Output:    res.Output,
		Err:       res.Err,
	}, nil
}

// deployAzQueue installs the manual queue-chained implementation
// (Table II: 4 λ, 304 MB): an HTTP-triggered prep stage followed by
// dimred → modelsel → select connected by storage queues with queue
// triggers (the paper triggers the chain over HTTP and reports latency
// until the last function finishes).
func deployAzQueue(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	costs := mlpipe.NewCosts(env.K, "az-mltrain-queue", mlpipe.AzureSpeed)
	blob := env.Azure.Blob
	blob.Preload(datasetKey(size), arts.DatasetCSV)

	d := &azQueueDeploy{
		env:   env,
		size:  size,
		arts:  arts,
		costs: costs,
		runs:  make(map[int64]*queueRun),
	}
	sfx := "-" + string(size)
	d.prepFn = "mlq-prep" + sfx
	d.q2 = env.Azure.NewQueue("ml-dimred-q" + sfx)
	d.q3 = env.Azure.NewQueue("ml-modelsel-q" + sfx)
	d.q4 = env.Azure.NewQueue("ml-select-q" + sfx)

	host := env.Azure.Host
	// Stage 1 is HTTP-triggered; stages 2-4 are queue-triggered.
	if _, err := host.Register(functions.Config{Name: d.prepFn, ConsumedMemMB: mlpipe.MemPrep, Handler: d.prep}); err != nil {
		return nil, err
	}
	type stage struct {
		name string
		mem  int
		h    functions.Handler
		q    *queue.Queue
	}
	stages := []stage{
		{"mlq-dimred" + sfx, mlpipe.MemPrep, d.dimred, d.q2},
		{"mlq-modelsel" + sfx, mlpipe.MemTrain, d.modelsel, d.q3},
		{"mlq-select" + sfx, mlpipe.MemSelect, d.selectBest, d.q4},
	}
	for _, st := range stages {
		if _, err := host.Register(functions.Config{Name: st.name, ConsumedMemMB: st.mem, Handler: st.h}); err != nil {
			return nil, err
		}
		if err := host.QueueTrigger(st.q, st.name); err != nil {
			return nil, err
		}
	}
	return &core.Deployment{Runner: d, FuncCount: 4, CodeSizeMB: 304}, nil
}

// queueRun tracks one in-flight chained run.
type queueRun struct {
	start      sim.Time
	enqueuedAt sim.Time // when stage 1 handed off to the first queue
	firstExec  sim.Time // when the first queue-triggered stage began
	haveFirst  bool
	done       *sim.Future[[]byte]
}

// azQueueDeploy is the queue-chained deployment state.
type azQueueDeploy struct {
	env   *core.Env
	size  mlpipe.DatasetSize
	arts  *mlpipe.Artifacts
	costs *mlpipe.Costs

	prepFn     string
	q2, q3, q4 *queue.Queue

	nextRun int64
	runs    map[int64]*queueRun
}

func (d *azQueueDeploy) track(run int64) *queueRun { return d.runs[run] }

func (d *azQueueDeploy) noteFirst(run int64, now sim.Time) {
	if t := d.runs[run]; t != nil && !t.haveFirst {
		t.haveFirst = true
		t.firstExec = now
	}
}

// prep is stage 1 (HTTP-triggered): download dataset, feature
// engineering, pass on through the first queue.
func (d *azQueueDeploy) prep(ctx *functions.Context, input []byte) ([]byte, error) {
	m, err := parseMsg(input)
	if err != nil {
		return nil, err
	}
	p := ctx.Proc()
	if _, err := d.env.Azure.Blob.Get(p, datasetKey(d.size)); err != nil {
		return nil, err
	}
	ctx.Busy(d.costs.Prep(d.size))
	ctx.Busy(d.costs.Xfer(d.arts.EncodedBytes))
	key := runKey(m.Run, "encoded")
	d.env.Azure.Blob.PutShared(p, key, payload.Zeros(d.arts.EncodedBytes))
	if t := d.track(m.Run); t != nil {
		t.enqueuedAt = p.Now()
	}
	return nil, d.q2.Enqueue(p, marshalMsg(stepMsg{Run: m.Run, Key: key}))
}

// dimred is stage 2 (first queue-triggered stage): PCA. Its start
// marks the paper's Az-Queue cold-start point ("queuing of requests on
// a static pool of containers").
func (d *azQueueDeploy) dimred(ctx *functions.Context, input []byte) ([]byte, error) {
	m, err := parseMsg(input)
	if err != nil {
		return nil, err
	}
	p := ctx.Proc()
	d.noteFirst(m.Run, p.Now())
	if _, err := d.env.Azure.Blob.Get(p, m.Key); err != nil {
		return nil, err
	}
	ctx.Busy(d.costs.Xfer(d.arts.EncodedBytes))
	ctx.Busy(d.costs.DimRed(d.size))
	ctx.Busy(d.costs.Xfer(d.arts.ProjectedBytes))
	key := runKey(m.Run, "projected")
	d.env.Azure.Blob.PutShared(p, key, payload.Zeros(d.arts.ProjectedBytes))
	return nil, d.q3.Enqueue(p, marshalMsg(stepMsg{Run: m.Run, Key: key}))
}

// modelsel is stage 3: train all algorithms serially (a single
// function, as in the paper's 4-function chain).
func (d *azQueueDeploy) modelsel(ctx *functions.Context, input []byte) ([]byte, error) {
	m, err := parseMsg(input)
	if err != nil {
		return nil, err
	}
	p := ctx.Proc()
	if _, err := d.env.Azure.Blob.Get(p, m.Key); err != nil {
		return nil, err
	}
	ctx.Busy(d.costs.Xfer(d.arts.ProjectedBytes))
	// The three models train inside this one function, overlapped on
	// the worker's cores like the monolith.
	ctx.Busy(d.costs.TrainAllPartial(d.size))
	best := stepMsg{Run: m.Run}
	for i, algo := range mlpipe.Algorithms {
		modelKey := runKey(m.Run, "model-"+algo)
		ctx.Busy(d.costs.Xfer(len(d.arts.ModelBytes[algo])))
		d.env.Azure.Blob.Put(p, modelKey, d.arts.ModelBytes[algo])
		if i == 0 || d.arts.ModelMSE[algo] < best.MSE {
			best = stepMsg{Run: m.Run, Algo: algo, MSE: d.arts.ModelMSE[algo], Model: modelKey}
		}
	}
	return nil, d.q4.Enqueue(p, marshalMsg(best))
}

// selectBest is stage 4: publish the winner and complete the run.
func (d *azQueueDeploy) selectBest(ctx *functions.Context, input []byte) ([]byte, error) {
	m, err := parseMsg(input)
	if err != nil {
		return nil, err
	}
	p := ctx.Proc()
	ctx.Busy(d.costs.SelectBest(d.size))
	src, err := d.env.Azure.Blob.Get(p, m.Model)
	if err != nil {
		return nil, err
	}
	ctx.Busy(d.costs.Xfer(len(src)))
	d.env.Azure.Blob.Put(p, bestModelKey, src)
	if t := d.track(m.Run); t != nil && !t.done.Done() {
		// The Done guard makes completion idempotent: under chaos a
		// duplicated queue message can re-run this stage after the run
		// already finished.
		t.done.Complete(mlpipe.EncodeResult(m.Algo, m.MSE), nil)
	}
	return nil, nil
}

// Invoke implements core.Runner: enqueue the first stage, await the
// completion signalled by the last stage. The paper measures this style
// from the trigger timestamp until the last function finishes.
func (d *azQueueDeploy) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	d.nextRun++
	run := d.nextRun
	t := &queueRun{start: p.Now(), done: sim.NewFuture[[]byte](d.env.K)}
	d.runs[run] = t
	if _, err := d.env.Azure.Host.InvokeHTTPAsync(p, d.prepFn, marshalMsg(stepMsg{Run: run, Key: datasetKey(d.size)})); err != nil {
		return core.RunStats{}, err
	}
	out, err := t.done.Await(p)
	delete(d.runs, run)
	if err != nil {
		return core.RunStats{}, err
	}
	stats := core.RunStats{E2E: p.Now() - t.start, Output: out}
	if !t.haveFirst {
		return stats, fmt.Errorf("mltrain: queue chain never started")
	}
	// The paper's Az-Queue cold-start metric is the wait of the first
	// queue-triggered stage ("queuing of requests on a static pool of
	// containers"): time from handoff into the queue to execution.
	stats.ColdStart = t.firstExec - t.enqueuedAt
	return stats, nil
}
