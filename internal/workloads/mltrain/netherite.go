package mltrain

import (
	"statebench/internal/azure/netherite"
	"statebench/internal/core"
	"statebench/internal/workloads/mlpipe"
)

// This file contributes the Netherite task-hub styles to the ML
// training workload, wired entirely from init like gcp.go: the same
// orchestrations and entities as Az-Dorch/Az-Dent, deployed onto a hub
// whose store is a partitioned, group-committed, speculative log
// instead of storage queues. The dispatch table and ExtraImpls in
// mltrain.go never mention Netherite.

func init() {
	deployers[netherite.Dorch] = deployNethDorch
	deployers[netherite.Dent] = deployNethDent
	extraImpls = append(extraImpls, netherite.Dorch, netherite.Dent)
}

// netheriteTarget deploys onto the Env's Netherite backend.
func netheriteTarget(env *core.Env) durableTarget {
	nc := netherite.FromEnv(env)
	return durableTarget{hub: nc.Hub, client: nc.Client, blob: nc.Blob, costsPrefix: "az-mltrain-n"}
}

func deployNethDorch(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	return deployDurableOrch(env, netheriteTarget(env), size, arts)
}

func deployNethDent(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	return deployDurableEnt(env, netheriteTarget(env), size, arts)
}
