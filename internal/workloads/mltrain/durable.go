package mltrain

import (
	"encoding/json"
	"fmt"

	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/cloud/blob"
	"statebench/internal/core"
	"statebench/internal/payload"
	"statebench/internal/sim"
	"statebench/internal/workloads/mlpipe"
)

// durableTarget is the task-hub bundle a durable deployment installs
// into: the classic Azure Storage hub by default, or the Netherite hub
// contributed by netherite.go. Same orchestrations, same activities,
// same entities — only the store behind the hub differs.
type durableTarget struct {
	hub    *durable.Hub
	client *durable.Client
	blob   *blob.Store
	// costsPrefix namespaces the deployment's cost-model RNG streams so
	// classic and Netherite deployments draw independently.
	costsPrefix string
}

// classicTarget is the paper's deployment target (env.Azure).
func classicTarget(env *core.Env) durableTarget {
	return durableTarget{hub: env.Azure.Hub, client: env.Azure.Client, blob: env.Azure.Blob, costsPrefix: "az-mltrain"}
}

// durableRunner starts one orchestration per run and reads the paper's
// durable latency metrics off the handle (Pending→Running cold start,
// Running→Completed end-to-end).
type durableRunner struct {
	client  *durable.Client
	orch    string
	nextRun int64
}

// Invoke implements core.Runner.
func (r *durableRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	r.nextRun++
	input := marshalMsg(stepMsg{Run: r.nextRun})
	out, hd, err := r.client.Run(p, r.orch, input)
	stats := core.RunStats{Output: out, Err: err}
	if hd != nil {
		stats.E2E = hd.E2E()
		stats.ColdStart = hd.ColdStart()
	}
	if hd == nil && err != nil {
		return stats, err
	}
	return stats, nil
}

// deployAzDorch installs the durable-orchestrator implementation
// (Table II: 6 λ, 304 MB): an orchestrator chaining prep and dimred
// activities, fanning out one training activity per algorithm, and a
// final select activity.
func deployAzDorch(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	return deployDurableOrch(env, classicTarget(env), size, arts)
}

// deployDurableOrch installs the orchestrator style onto any durable
// target hub.
func deployDurableOrch(env *core.Env, tgt durableTarget, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	costs := mlpipe.NewCosts(env.K, tgt.costsPrefix+"-dorch", mlpipe.AzureSpeed)
	blob := tgt.blob
	blob.Preload(datasetKey(size), arts.DatasetCSV)
	hub := tgt.hub
	sfx := "-" + string(size)

	if err := hub.RegisterActivity("dorch-prep"+sfx, mlpipe.MemPrep, func(ctx *functions.Context, input []byte) ([]byte, error) {
		m, err := parseMsg(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if _, err := blob.Get(p, datasetKey(size)); err != nil {
			return nil, err
		}
		ctx.Busy(costs.Prep(size))
		ctx.Busy(costs.Xfer(arts.EncodedBytes))
		key := runKey(m.Run, "encoded")
		blob.PutShared(p, key, payload.Zeros(arts.EncodedBytes))
		return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
	}); err != nil {
		return nil, err
	}

	if err := hub.RegisterActivity("dorch-dimred"+sfx, mlpipe.MemPrep, func(ctx *functions.Context, input []byte) ([]byte, error) {
		m, err := parseMsg(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if _, err := blob.Get(p, m.Key); err != nil {
			return nil, err
		}
		ctx.Busy(costs.Xfer(arts.EncodedBytes))
		ctx.Busy(costs.DimRed(size))
		ctx.Busy(costs.Xfer(arts.ProjectedBytes))
		key := runKey(m.Run, "projected")
		blob.PutShared(p, key, payload.Zeros(arts.ProjectedBytes))
		return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
	}); err != nil {
		return nil, err
	}

	if err := hub.RegisterActivity("dorch-train"+sfx, mlpipe.MemTrain, func(ctx *functions.Context, input []byte) ([]byte, error) {
		m, err := parseMsg(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if _, err := blob.Get(p, m.Key); err != nil {
			return nil, err
		}
		ctx.Busy(costs.Xfer(arts.ProjectedBytes))
		ctx.Busy(costs.TrainModel(m.Algo, size))
		ctx.Busy(costs.Xfer(len(arts.ModelBytes[m.Algo])))
		modelKey := runKey(m.Run, "model-"+m.Algo)
		blob.Put(p, modelKey, arts.ModelBytes[m.Algo])
		return marshalMsg(stepMsg{Run: m.Run, Algo: m.Algo, MSE: arts.ModelMSE[m.Algo], Model: modelKey}), nil
	}); err != nil {
		return nil, err
	}

	if err := hub.RegisterActivity("dorch-select"+sfx, mlpipe.MemSelect, func(ctx *functions.Context, input []byte) ([]byte, error) {
		var results []stepMsg
		if err := json.Unmarshal(input, &results); err != nil {
			return nil, err
		}
		if len(results) == 0 {
			return nil, fmt.Errorf("mltrain: select got no results")
		}
		ctx.Busy(costs.SelectBest(size))
		best := results[0]
		for _, r := range results[1:] {
			if r.MSE < best.MSE {
				best = r
			}
		}
		p := ctx.Proc()
		src, err := blob.Get(p, best.Model)
		if err != nil {
			return nil, err
		}
		ctx.Busy(costs.Xfer(len(src)))
		blob.Put(p, bestModelKey, src)
		return mlpipe.EncodeResult(best.Algo, best.MSE), nil
	}); err != nil {
		return nil, err
	}

	orchName := "ml-train-dorch" + sfx
	if err := hub.RegisterOrchestrator(orchName, mlpipe.MemOrch, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		encOut, err := ctx.CallActivity("dorch-prep"+sfx, input).Await()
		if err != nil {
			return nil, err
		}
		projOut, err := ctx.CallActivity("dorch-dimred"+sfx, encOut).Await()
		if err != nil {
			return nil, err
		}
		proj, err := parseMsg(projOut)
		if err != nil {
			return nil, err
		}
		var tasks []*durable.Task
		for _, algo := range mlpipe.Algorithms {
			tasks = append(tasks, ctx.CallActivity("dorch-train"+sfx,
				marshalMsg(stepMsg{Run: proj.Run, Key: proj.Key, Algo: algo})))
		}
		outs, err := ctx.WaitAll(tasks...)
		if err != nil {
			return nil, err
		}
		results := make([]stepMsg, 0, len(outs))
		for _, o := range outs {
			m, err := parseMsg(o)
			if err != nil {
				return nil, err
			}
			results = append(results, m)
		}
		resultsJSON, err := json.Marshal(results)
		if err != nil {
			return nil, err
		}
		return ctx.CallActivity("dorch-select"+sfx, resultsJSON).Await()
	}); err != nil {
		return nil, err
	}

	return &core.Deployment{
		Runner:     &durableRunner{client: tgt.client, orch: orchName},
		FuncCount:  6,
		CodeSizeMB: 304,
	}, nil
}

// deployAzDent installs the durable-entities implementation (Table II:
// 7 λ, 304 MB): feature-engineering entities (Encoding, Scalar,
// DReduction), per-algorithm training via a sub-orchestrator (random
// forest) and entities (kneighbors, lasso), and a ModelSelection
// collector entity holding the best fit — the Fig 3/Fig 4 structure.
func deployAzDent(env *core.Env, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	return deployDurableEnt(env, classicTarget(env), size, arts)
}

// deployDurableEnt installs the entities style onto any durable target
// hub.
func deployDurableEnt(env *core.Env, tgt durableTarget, size mlpipe.DatasetSize, arts *mlpipe.Artifacts) (*core.Deployment, error) {
	costs := mlpipe.NewCosts(env.K, tgt.costsPrefix+"-dent", mlpipe.AzureSpeed)
	blob := tgt.blob
	blob.Preload(datasetKey(size), arts.DatasetCSV)
	hub := tgt.hub
	sfx := "-" + string(size)

	// Encoding entity: fits/holds the one-hot encoder, emits the
	// encoded dataframe to blob.
	if err := hub.RegisterEntity("Encoding"+sfx, mlpipe.MemPrep, func(ctx *durable.EntityContext, op string, input []byte) ([]byte, error) {
		switch op {
		case "fit":
			m, err := parseMsg(input)
			if err != nil {
				return nil, err
			}
			p := ctx.Proc()
			if _, err := blob.Get(p, datasetKey(size)); err != nil {
				return nil, err
			}
			ctx.Busy(costs.Prep(size) * 6 / 10) // encode share of prep
			ctx.Busy(costs.Xfer(arts.EncodedBytes))
			ctx.SetState(arts.EncoderBytes)
			key := runKey(m.Run, "encoded")
			blob.PutShared(p, key, payload.Zeros(arts.EncodedBytes))
			return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
		case "get":
			return ctx.State(), nil
		}
		return nil, fmt.Errorf("mltrain: Encoding: unknown op %q", op)
	}); err != nil {
		return nil, err
	}

	// Scalar entity: fits/holds the scaler.
	if err := hub.RegisterEntity("Scalar"+sfx, mlpipe.MemPrep, func(ctx *durable.EntityContext, op string, input []byte) ([]byte, error) {
		switch op {
		case "fit":
			m, err := parseMsg(input)
			if err != nil {
				return nil, err
			}
			p := ctx.Proc()
			if _, err := blob.Get(p, m.Key); err != nil {
				return nil, err
			}
			ctx.Busy(costs.Xfer(arts.EncodedBytes))
			ctx.Busy(costs.Prep(size) * 4 / 10) // scale share of prep
			ctx.Busy(costs.Xfer(arts.EncodedBytes))
			ctx.SetState(arts.ScalerBytes)
			key := runKey(m.Run, "scaled")
			blob.PutShared(p, key, payload.Zeros(arts.EncodedBytes))
			return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
		case "get":
			return ctx.State(), nil
		}
		return nil, fmt.Errorf("mltrain: Scalar: unknown op %q", op)
	}); err != nil {
		return nil, err
	}

	// DReduction entity: fits/holds the PCA.
	if err := hub.RegisterEntity("DReduction"+sfx, mlpipe.MemPrep, func(ctx *durable.EntityContext, op string, input []byte) ([]byte, error) {
		switch op {
		case "decompose":
			m, err := parseMsg(input)
			if err != nil {
				return nil, err
			}
			p := ctx.Proc()
			if _, err := blob.Get(p, m.Key); err != nil {
				return nil, err
			}
			ctx.Busy(costs.Xfer(arts.EncodedBytes))
			ctx.Busy(costs.DimRed(size))
			ctx.Busy(costs.Xfer(arts.ProjectedBytes))
			ctx.SetState(arts.PCABytes)
			key := runKey(m.Run, "projected")
			blob.PutShared(p, key, payload.Zeros(arts.ProjectedBytes))
			return marshalMsg(stepMsg{Run: m.Run, Key: key}), nil
		case "get":
			return ctx.State(), nil
		}
		return nil, fmt.Errorf("mltrain: DReduction: unknown op %q", op)
	}); err != nil {
		return nil, err
	}

	// Small-model training entities (paper: "for smaller and faster
	// models we used a stateful entity").
	trainEntity := func(algo string) durable.EntityFn {
		return func(ctx *durable.EntityContext, op string, input []byte) ([]byte, error) {
			switch op {
			case "train":
				m, err := parseMsg(input)
				if err != nil {
					return nil, err
				}
				p := ctx.Proc()
				if _, err := blob.Get(p, m.Key); err != nil {
					return nil, err
				}
				ctx.Busy(costs.Xfer(arts.ProjectedBytes))
				ctx.Busy(costs.TrainModel(algo, size))
				ctx.Busy(costs.Xfer(len(arts.ModelBytes[algo])))
				modelKey := runKey(m.Run, "model-"+algo)
				blob.Put(p, modelKey, arts.ModelBytes[algo])
				ctx.SetState([]byte(modelKey))
				return marshalMsg(stepMsg{Run: m.Run, Algo: algo, MSE: arts.ModelMSE[algo], Model: modelKey}), nil
			case "get":
				return ctx.State(), nil
			}
			return nil, fmt.Errorf("mltrain: %s entity: unknown op %q", algo, op)
		}
	}
	if err := hub.RegisterEntity("KNeighbors"+sfx, mlpipe.MemTrain, trainEntity("kneighbors")); err != nil {
		return nil, err
	}
	if err := hub.RegisterEntity("Lasso"+sfx, mlpipe.MemTrain, trainEntity("lasso")); err != nil {
		return nil, err
	}

	// ModelSelection collector entity: keeps the best model seen
	// (paper Fig 3: "a collector entity collects the results and
	// selects the best model").
	if err := hub.RegisterEntity("ModelSelection"+sfx, mlpipe.MemSelect, func(ctx *durable.EntityContext, op string, input []byte) ([]byte, error) {
		switch op {
		case "report":
			m, err := parseMsg(input)
			if err != nil {
				return nil, err
			}
			ctx.Busy(costs.SelectBest(size) / 3)
			var cur stepMsg
			if ctx.HasState() {
				if err := json.Unmarshal(ctx.State(), &cur); err != nil {
					return nil, err
				}
			}
			if !ctx.HasState() || m.MSE < cur.MSE {
				ctx.SetState(marshalMsg(m))
				p := ctx.Proc()
				src, err := blob.Get(p, m.Model)
				if err != nil {
					return nil, err
				}
				blob.Put(p, bestModelKey, src)
			}
			return nil, nil
		case "get":
			if !ctx.HasState() {
				return nil, fmt.Errorf("mltrain: ModelSelection has no model yet")
			}
			return ctx.State(), nil
		}
		return nil, fmt.Errorf("mltrain: ModelSelection: unknown op %q", op)
	}); err != nil {
		return nil, err
	}

	// Random-forest training: sub-orchestrator wrapping an activity
	// (paper: "for larger models we used a sub-orchestrator").
	if err := hub.RegisterActivity("dent-rf-train"+sfx, mlpipe.MemTrain, func(ctx *functions.Context, input []byte) ([]byte, error) {
		m, err := parseMsg(input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if _, err := blob.Get(p, m.Key); err != nil {
			return nil, err
		}
		ctx.Busy(costs.Xfer(arts.ProjectedBytes))
		ctx.Busy(costs.TrainModel("randomforest", size))
		ctx.Busy(costs.Xfer(len(arts.ModelBytes["randomforest"])))
		modelKey := runKey(m.Run, "model-randomforest")
		blob.Put(p, modelKey, arts.ModelBytes["randomforest"])
		return marshalMsg(stepMsg{Run: m.Run, Algo: "randomforest", MSE: arts.ModelMSE["randomforest"], Model: modelKey}), nil
	}); err != nil {
		return nil, err
	}
	if err := hub.RegisterOrchestrator("dent-rf-sub"+sfx, mlpipe.MemOrch, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		return ctx.CallActivity("dent-rf-train"+sfx, input).Await()
	}); err != nil {
		return nil, err
	}

	orchName := "ml-train-dent" + sfx
	if err := hub.RegisterOrchestrator(orchName, mlpipe.MemOrch, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		m, err := parseMsg(input)
		if err != nil {
			return nil, err
		}
		key := func(name string) durable.EntityID { return durable.EntityID{Name: name + sfx, Key: "shared"} }

		encOut, err := ctx.CallEntity(key("Encoding"), "fit", input).Await()
		if err != nil {
			return nil, err
		}
		scaledOut, err := ctx.CallEntity(key("Scalar"), "fit", encOut).Await()
		if err != nil {
			return nil, err
		}
		projOut, err := ctx.CallEntity(key("DReduction"), "decompose", scaledOut).Await()
		if err != nil {
			return nil, err
		}

		rf := ctx.CallSubOrchestrator("dent-rf-sub"+sfx, projOut)
		knn := ctx.CallEntity(key("KNeighbors"), "train", projOut)
		lasso := ctx.CallEntity(key("Lasso"), "train", projOut)
		outs, err := ctx.WaitAll(rf, knn, lasso)
		if err != nil {
			return nil, err
		}
		for _, o := range outs {
			r, err := ctx.CallEntity(key("ModelSelection"), "report", o).Await()
			_ = r
			if err != nil {
				return nil, err
			}
		}
		bestRaw, err := ctx.CallEntity(key("ModelSelection"), "get", nil).Await()
		if err != nil {
			return nil, err
		}
		best, err := parseMsg(bestRaw)
		if err != nil {
			return nil, err
		}
		_ = m
		return mlpipe.EncodeResult(best.Algo, best.MSE), nil
	}); err != nil {
		return nil, err
	}

	return &core.Deployment{
		Runner:     &durableRunner{client: tgt.client, orch: orchName},
		FuncCount:  7,
		CodeSizeMB: 304,
	}, nil
}
