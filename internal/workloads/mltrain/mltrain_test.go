package mltrain

import (
	"testing"
	"time"

	"statebench/internal/core"
	"statebench/internal/sim"
	"statebench/internal/workloads/mlpipe"
)

// measure runs a short campaign on the small dataset (fast: small
// artifacts, few iterations).
func measure(t *testing.T, impl core.Impl, iters int) *core.Series {
	t.Helper()
	wf := New(mlpipe.Small)
	opt := core.DefaultMeasureOptions()
	opt.Iters = iters
	opt.Seed = 11
	s, err := core.Measure(wf, impl, opt)
	if err != nil {
		t.Fatalf("measure %s: %v", impl, err)
	}
	if s.Errors != 0 {
		t.Fatalf("%s had %d run errors", impl, s.Errors)
	}
	return s
}

// invokeOnce deploys and runs one invocation, returning the stats.
func invokeOnce(t *testing.T, impl core.Impl, size mlpipe.DatasetSize) core.RunStats {
	t.Helper()
	env := core.NewEnv(5)
	dep, err := New(size).Deploy(env, impl)
	if err != nil {
		t.Fatalf("deploy %s: %v", impl, err)
	}
	var stats core.RunStats
	var runErr error
	env.K.Spawn("test", func(p *sim.Proc) {
		defer env.Stop()
		stats, runErr = dep.Runner.Invoke(p, nil)
	})
	env.K.Run()
	if runErr != nil {
		t.Fatalf("invoke %s: %v", impl, runErr)
	}
	if stats.Err != nil {
		t.Fatalf("run error %s: %v", impl, stats.Err)
	}
	return stats
}

func TestAllImplsProduceTheCorrectBestFit(t *testing.T) {
	arts, err := mlpipe.Train(mlpipe.Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, impl := range core.AllImpls() {
		stats := invokeOnce(t, impl, mlpipe.Small)
		res, err := mlpipe.ParseResult(stats.Output)
		if err != nil {
			t.Fatalf("%s output %q: %v", impl, stats.Output, err)
		}
		if res.Best != arts.BestName {
			t.Fatalf("%s selected %q, pipeline best is %q", impl, res.Best, arts.BestName)
		}
		if stats.E2E <= 0 {
			t.Fatalf("%s reported no latency", impl)
		}
	}
}

func TestDeployMetadataMatchesTableII(t *testing.T) {
	want := map[core.Impl]struct {
		funcs int
		code  float64
	}{
		core.AWSLambda: {1, 63.1},
		core.AWSStep:   {4, 271.2},
		core.AzFunc:    {1, 304},
		core.AzQueue:   {4, 304},
		core.AzDorch:   {6, 304},
		core.AzDent:    {7, 304},
	}
	for impl, w := range want {
		env := core.NewEnv(1)
		dep, err := New(mlpipe.Small).Deploy(env, impl)
		if err != nil {
			t.Fatalf("deploy %s: %v", impl, err)
		}
		if dep.FuncCount != w.funcs || dep.CodeSizeMB != w.code {
			t.Fatalf("%s metadata = %d/%.1f, want %d/%.1f", impl, dep.FuncCount, dep.CodeSizeMB, w.funcs, w.code)
		}
	}
}

func TestQueueChainSlowerThanMonolith(t *testing.T) {
	// Paper Fig 6a: Az-Queue adds ~30% latency over Az-Func on the
	// small dataset (queue hop waiting).
	mono := measure(t, core.AzFunc, 6)
	chain := measure(t, core.AzQueue, 6)
	if chain.E2E.Median() <= mono.E2E.Median() {
		t.Fatalf("Az-Queue median %v not slower than Az-Func %v", chain.E2E.Median(), mono.E2E.Median())
	}
}

func TestDurableBetweenMonolithAndQueue(t *testing.T) {
	// Paper: durable orchestration overhead sits between the pure
	// function and the manual queue chain.
	mono := measure(t, core.AzFunc, 6)
	dorch := measure(t, core.AzDorch, 6)
	chain := measure(t, core.AzQueue, 6)
	if dorch.E2E.Median() <= mono.E2E.Median() {
		t.Fatalf("Az-Dorch %v not slower than Az-Func %v", dorch.E2E.Median(), mono.E2E.Median())
	}
	if dorch.E2E.Median() >= chain.E2E.Median() {
		t.Fatalf("Az-Dorch %v not faster than Az-Queue %v", dorch.E2E.Median(), chain.E2E.Median())
	}
}

func TestAWSStepAddsOverheadOverLambda(t *testing.T) {
	mono := measure(t, core.AWSLambda, 6)
	step := measure(t, core.AWSStep, 6)
	if step.E2E.Median() <= mono.E2E.Median() {
		t.Fatalf("AWS-Step %v not slower than AWS-Lambda %v", step.E2E.Median(), mono.E2E.Median())
	}
}

func TestDurableGBsExceedMonolith(t *testing.T) {
	// Paper Fig 11a: replay inflates durable GB-s over the stateless
	// function.
	mono := measure(t, core.AzFunc, 6)
	dorch := measure(t, core.AzDorch, 6)
	dent := measure(t, core.AzDent, 6)
	if dorch.MeanGBs <= mono.MeanGBs {
		t.Fatalf("Az-Dorch GB-s %.3f not above Az-Func %.3f", dorch.MeanGBs, mono.MeanGBs)
	}
	if dent.MeanGBs <= dorch.MeanGBs {
		t.Fatalf("Az-Dent GB-s %.3f not above Az-Dorch %.3f", dent.MeanGBs, dorch.MeanGBs)
	}
}

func TestAWSTransitionsCounted(t *testing.T) {
	step := measure(t, core.AWSStep, 4)
	// Prep + DimRed + Map + 3 iterations + Select = 7 transitions.
	if step.MeanTxns != 7 {
		t.Fatalf("mean transitions = %v, want 7", step.MeanTxns)
	}
	mono := measure(t, core.AWSLambda, 4)
	if mono.MeanTxns != 0 {
		t.Fatalf("lambda-only run has %v transitions", mono.MeanTxns)
	}
}

func TestAzureChargesStorageTransactions(t *testing.T) {
	dorch := measure(t, core.AzDorch, 4)
	if dorch.MeanTxns <= 0 {
		t.Fatal("durable run produced no storage transactions")
	}
	if dorch.MeanBill.Stateful <= 0 {
		t.Fatal("durable stateful cost is zero")
	}
}

func TestColdStartCampaignShape(t *testing.T) {
	// Short campaign (6 hours): every request should land cold on
	// every style, and Az-Queue's cold start must dwarf the durable
	// ones (paper Fig 10).
	dorchSamples, err := core.ColdStartCampaign(New(mlpipe.Small), core.AzDorch, 5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	queueSamples, err := core.ColdStartCampaign(New(mlpipe.Small), core.AzQueue, 5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dorchSamples.Len() != 5 || queueSamples.Len() != 5 {
		t.Fatalf("sample counts %d/%d", dorchSamples.Len(), queueSamples.Len())
	}
	if queueSamples.Median() < 5*time.Second {
		t.Fatalf("Az-Queue cold start %v, want >= 5s (poll phase)", queueSamples.Median())
	}
	if dorchSamples.Median() >= queueSamples.Median() {
		t.Fatalf("Az-Dorch cold %v not below Az-Queue %v", dorchSamples.Median(), queueSamples.Median())
	}
}

func TestMeasureDeterministicAcrossRuns(t *testing.T) {
	a := measure(t, core.AzDorch, 3)
	b := measure(t, core.AzDorch, 3)
	if a.E2E.Median() != b.E2E.Median() || a.MeanTxns != b.MeanTxns {
		t.Fatalf("nondeterministic measurement: %v/%v vs %v/%v",
			a.E2E.Median(), a.MeanTxns, b.E2E.Median(), b.MeanTxns)
	}
}
