package optimizer

// The test binary links the lowerer registry so every registered style
// participates in the sweeps (the optimizer package itself imports no
// provider code).

import (
	"bytes"
	"encoding/csv"
	"math/rand"
	"strings"
	"testing"
	"time"

	"statebench/internal/core"
	"statebench/internal/flow"
	_ "statebench/internal/flow/lowerers"
	"statebench/internal/payload"
	"statebench/internal/workloads/mapreduce"
)

// testSpace is a fast mapreduce sweep space: 2 memory tiers × 2
// fan-outs × 2 reducer counts across every registered style, with the
// monolith class declared shape-irrelevant (it recomputes the whole
// corpus regardless of mapper/reducer counts).
func testSpace() Space {
	return Space{
		Workload: "mapreduce",
		Build: func(c Config) core.Workflow {
			w := mapreduce.New()
			w.CorpusBytes = 200e3
			w.MemMB = c.MemMB
			if c.FanOut > 0 {
				w.Mappers = c.FanOut
			}
			if c.Chunk > 0 {
				w.Reducers = c.Chunk
			}
			return w
		},
		MemTiersMB:             []int{0, 1024},
		FanOuts:                []int{4, 6},
		Chunks:                 []int{2, 3},
		ShapeIrrelevantClasses: []flow.Class{flow.Mono},
	}
}

func testOptions() Options {
	return Options{Iters: 3, Warmup: 1, Seed: 42, Workers: 1}
}

func sweepCSV(t *testing.T, o Options) string {
	t.Helper()
	r, err := Sweep(testSpace(), o)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Result{r}); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return buf.String()
}

// TestSweepWorkerInvariance pins the engine's core determinism claim:
// the full candidate record — frontier, dominated set, exclusions,
// delta annotations — is byte-identical at any worker count.
func TestSweepWorkerInvariance(t *testing.T) {
	o := testOptions()
	seq := sweepCSV(t, o)
	o.Workers = 8
	par := sweepCSV(t, o)
	if seq != par {
		t.Fatalf("sweep CSV differs between -parallel 1 and 8:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}

// TestSweepColdSharedEquivalence pins the optimization's safety: the
// shared-engine sweep (cross-campaign payload reuse plus config-level
// delta evaluation) emits the exact bytes of the cold baseline that
// measures every candidate with a private cache. This is also the
// empirical check on the signature collapse rules — if a provider
// billed a collapsed memory tier or a monolith honored fan-out, the
// delta-resolved candidates' rows would diverge from their cold runs.
func TestSweepColdSharedEquivalence(t *testing.T) {
	o := testOptions()
	shared := sweepCSV(t, o)
	o.Cold = true
	cold := sweepCSV(t, o)
	if shared != cold {
		t.Fatalf("shared-engine sweep diverges from cold baseline:\n--- shared ---\n%s\n--- cold ---\n%s", shared, cold)
	}
}

// TestSweepSharedDoesLessWork pins the perf claim deterministically,
// without wall clocks: compute misses (each miss is one real payload
// computation; distinct-key counts are worker-count-independent) in
// the shared sweep must be at most 0.35x the cold sweep's, and delta
// evaluation must collapse the measured candidate set.
func TestSweepSharedDoesLessWork(t *testing.T) {
	space := testSpace()

	o := testOptions()
	eng := payload.NewEngine()
	o.Engine = eng
	shared, err := Sweep(space, o)
	if err != nil {
		t.Fatalf("shared sweep: %v", err)
	}

	o = testOptions()
	o.Cold = true
	cold, err := Sweep(space, o)
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}

	measured := 0
	for i := range cold.Candidates {
		if cold.Candidates[i].Status != StatusExcluded {
			measured++
		}
	}
	if cold.Evals != measured {
		t.Fatalf("cold sweep evals = %d, want every measured candidate (%d)", cold.Evals, measured)
	}
	if shared.Evals >= measured {
		t.Fatalf("delta evaluation collapsed nothing: %d evals for %d measured candidates", shared.Evals, measured)
	}

	// Real compute in the shared sweep = distinct keys on the root
	// engine minus the zero-cost campaign memo entries; in the cold
	// sweep every campaign recomputes, so its work is the sum of the
	// per-campaign misses.
	sharedWork := eng.Stats().Misses - int64(shared.Evals)
	coldWork := cold.Payload.Misses
	if sharedWork <= 0 || coldWork <= 0 {
		t.Fatalf("implausible work counts: shared %d, cold %d", sharedWork, coldWork)
	}
	if ratio := float64(sharedWork) / float64(coldWork); ratio > 0.35 {
		t.Fatalf("shared sweep computed %d payloads vs cold %d (ratio %.2f > 0.35)",
			sharedWork, coldWork, ratio)
	}
}

// TestEnumerateCanonicalOrder pins enumeration-order invariance: the
// candidate list does not depend on how the space declares its
// dimension values.
func TestEnumerateCanonicalOrder(t *testing.T) {
	a := Enumerate(testSpace())

	s := testSpace()
	s.MemTiersMB = []int{1024, 0}
	s.FanOuts = []int{6, 4}
	s.Chunks = []int{3, 2}
	impls := core.RegisteredImpls()
	rand.New(rand.NewSource(7)).Shuffle(len(impls), func(i, j int) { impls[i], impls[j] = impls[j], impls[i] })
	s.Impls = impls
	b := Enumerate(s)

	if len(a) != len(b) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Config != b[i].Config || a[i].Status != b[i].Status ||
			a[i].Reason != b[i].Reason || a[i].DeltaOf != b[i].DeltaOf {
			t.Fatalf("candidate %d differs under reordered declaration:\n%+v\nvs\n%+v", i, a[i], b[i])
		}
	}
}

// TestClassifyShardInvariance sweeps the space in two shards (distinct
// memory tiers), merges the shard candidates, re-classifies, and
// checks the result matches the single full sweep — the property that
// lets a sharded search be stitched back into one frontier.
func TestClassifyShardInvariance(t *testing.T) {
	full, err := Sweep(testSpace(), testOptions())
	if err != nil {
		t.Fatalf("full sweep: %v", err)
	}

	var merged []Candidate
	for _, mem := range []int{1024, 0} { // reversed on purpose
		s := testSpace()
		s.MemTiersMB = []int{mem}
		r, err := Sweep(s, testOptions())
		if err != nil {
			t.Fatalf("shard sweep mem=%d: %v", mem, err)
		}
		merged = append(merged, r.Candidates...)
	}
	// Restore canonical order across shards, then re-classify: shard
	// boundaries may have hidden a cross-shard dominator.
	for i := range merged {
		for j := i + 1; j < len(merged); j++ {
			if merged[j].Config.less(merged[i].Config) {
				merged[i], merged[j] = merged[j], merged[i]
			}
		}
	}
	Classify(merged)

	if len(merged) != len(full.Candidates) {
		t.Fatalf("merged shard candidates = %d, full sweep = %d", len(merged), len(full.Candidates))
	}
	for i := range merged {
		f := full.Candidates[i]
		if merged[i].Config != f.Config || merged[i].Status != f.Status ||
			merged[i].Reason != f.Reason || merged[i].Lat != f.Lat || merged[i].Cost != f.Cost {
			t.Fatalf("candidate %d differs between sharded and full sweep:\n%+v\nvs\n%+v", i, merged[i], f)
		}
	}
}

// TestNoSilentSkips: every enumerated candidate appears in the result
// with a status, and every exclusion carries a reason.
func TestNoSilentSkips(t *testing.T) {
	r, err := Sweep(testSpace(), testOptions())
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	want := len(core.RegisteredImpls()) * 2 * 2 * 2
	if len(r.Candidates) != want {
		t.Fatalf("got %d candidates, want %d (impls x mems x fans x chunks)", len(r.Candidates), want)
	}
	for i := range r.Candidates {
		c := &r.Candidates[i]
		switch c.Status {
		case StatusFrontier:
			if c.Reason != "" {
				t.Errorf("%s: frontier candidate has reason %q", c.Config.Label(), c.Reason)
			}
		case StatusDominated, StatusExcluded:
			if c.Reason == "" {
				t.Errorf("%s: %s candidate with empty reason", c.Config.Label(), c.Status)
			}
		default:
			t.Errorf("%s: unclassified candidate (status %q)", c.Config.Label(), c.Status)
		}
	}
}

// TestPicks exercises the SLO and budget selectors against the
// domination structure: the cheapest-under-SLO pick must meet the SLO
// and sit on the frontier (a dominated config can never be the unique
// cheapest at a latency bound), and likewise for fastest-under-budget.
func TestPicks(t *testing.T) {
	r, err := Sweep(testSpace(), testOptions())
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	fr := r.Frontier()
	if len(fr) == 0 {
		t.Fatal("empty frontier")
	}

	// An SLO below every latency yields no pick.
	if c := r.CheapestUnder(0); c != nil {
		t.Fatalf("CheapestUnder(0) = %s, want nil", c.Config.Label())
	}
	if c := r.FastestUnder(0); c != nil {
		t.Fatalf("FastestUnder(0) = %s, want nil", c.Config.Label())
	}

	slo := fr[len(fr)-1].Lat // loosest frontier latency
	pick := r.CheapestUnder(slo)
	if pick == nil {
		t.Fatalf("CheapestUnder(%v) found nothing", slo)
	}
	if pick.Lat > slo {
		t.Fatalf("pick %s violates SLO: %v > %v", pick.Config.Label(), pick.Lat, slo)
	}
	if pick.Status != StatusFrontier {
		t.Fatalf("cheapest-under-SLO pick %s is %s, want frontier", pick.Config.Label(), pick.Status)
	}

	budget := fr[0].Cost * 10
	fast := r.FastestUnder(budget)
	if fast == nil {
		t.Fatalf("FastestUnder(%f) found nothing", budget)
	}
	if fast.Cost > budget {
		t.Fatalf("pick %s violates budget: %f > %f", fast.Config.Label(), fast.Cost, budget)
	}
	if fast.Status != StatusFrontier {
		t.Fatalf("fastest-under-budget pick %s is %s, want frontier", fast.Config.Label(), fast.Status)
	}
}

// lintedWorkflow wraps an IR-defined workload and inflates every
// node's declared output estimate far past any provider's payload cap.
// Every real workload in the suite is lint-clean, so this is how the
// tests prove the advisory plumbing end to end.
type lintedWorkflow struct {
	core.Workflow
}

func (w lintedWorkflow) FlowDef() (*flow.Definition, error) {
	def, err := w.Workflow.(interface {
		FlowDef() (*flow.Definition, error)
	}).FlowDef()
	if err != nil {
		return nil, err
	}
	d := *def
	d.Graphs = make(map[flow.Class]*flow.Graph, len(def.Graphs))
	for cl, g := range def.Graphs {
		g2 := *g
		g2.Nodes = make([]*flow.Node, len(g.Nodes))
		for i, n := range g.Nodes {
			n2 := *n
			n2.OutEst = 1 << 30 // ~1 GiB: over every registered cap
			g2.Nodes[i] = &n2
		}
		d.Graphs[cl] = &g2
	}
	return &d, nil
}

// TestAdvisoriesFlowThrough pins the lint-advisory path: a definition
// whose payload estimates exceed a provider cap must surface findings
// on exactly the candidates whose lowerer declares a cap, and those
// findings must land verbatim in the CSV's advisories column.
func TestAdvisoriesFlowThrough(t *testing.T) {
	s := testSpace()
	inner := s.Build
	s.Build = func(c Config) core.Workflow { return lintedWorkflow{inner(c)} }
	cands := Enumerate(s)

	flagged := 0
	for i := range cands {
		c := &cands[i]
		if c.Status == StatusExcluded {
			continue
		}
		capped := false
		if l, ok := flow.LowererFor(c.Config.Impl); ok {
			capped = l.Caps().PayloadBytes > 0
		}
		if capped != (len(c.Advisories) > 0) {
			t.Fatalf("%s: capped=%v but %d advisories", c.Config.Label(), capped, len(c.Advisories))
		}
		for _, a := range c.Advisories {
			if !strings.Contains(a, "provider cap") || !strings.Contains(a, string(c.Config.Impl)) {
				t.Fatalf("%s: malformed advisory %q", c.Config.Label(), a)
			}
		}
		if capped {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("no candidate carried an advisory; lint plumbing is dead")
	}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Result{{Workload: s.Workload, Candidates: cands}}); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("re-parse CSV: %v", err)
	}
	advCol := len(rows[0]) - 1
	if rows[0][advCol] != "advisories" {
		t.Fatalf("last CSV column = %q, want advisories", rows[0][advCol])
	}
	inCSV := 0
	for _, row := range rows[1:] {
		if row[advCol] == "" {
			continue
		}
		inCSV++
		if !strings.Contains(row[advCol], "provider cap") {
			t.Fatalf("CSV advisory cell %q lacks the lint finding", row[advCol])
		}
	}
	if inCSV != flagged {
		t.Fatalf("CSV carries %d advisory rows, candidates carried %d", inCSV, flagged)
	}
}

// TestMemoSharesSeries pins the memo contract directly: equal
// signatures share one Series by reference.
func TestMemoSharesSeries(t *testing.T) {
	eng := payload.NewEngine()
	m := NewMemo(eng)
	calls := 0
	measure := func() (*core.Series, error) {
		calls++
		return &core.Series{Workflow: "x"}, nil
	}
	a, err := m.Series("sig", measure)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Series("sig", measure)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || a != b {
		t.Fatalf("memo did not coalesce: %d calls, shared=%v", calls, a == b)
	}
	if _, err := m.Series("other", measure); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("distinct signature did not measure: %d calls", calls)
	}
}

// TestSweepRepeatability: same options, fresh engines, same bytes —
// and a quick sanity bound that measured latencies are positive.
func TestSweepRepeatability(t *testing.T) {
	a := sweepCSV(t, testOptions())
	b := sweepCSV(t, testOptions())
	if a != b {
		t.Fatalf("repeat sweep differs:\n%s\nvs\n%s", a, b)
	}
	r, err := Sweep(testSpace(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Candidates {
		c := &r.Candidates[i]
		if c.Status == StatusExcluded {
			continue
		}
		if c.Lat <= 0 || c.Lat > time.Hour || c.Cost <= 0 {
			t.Errorf("%s: implausible measurement lat=%v cost=%f", c.Config.Label(), c.Lat, c.Cost)
		}
	}
}
