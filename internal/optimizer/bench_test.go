package optimizer

// The cold-vs-shared sweep pair behind BENCH_PR10.json: the same
// >=200-config mltrain+mapreduce space swept with per-candidate
// private payload caches (the pre-optimizer baseline: every campaign
// recomputes all of its payload work) and with the sweep-shared engine
// plus config-level delta evaluation. Both modes run under one
// benchmark name, switched by STATEBENCH_SWEEP_COLD=1, so capturing
// each mode to a JSON (cmd/benchjson -label) and diffing them with
// cmd/benchjson -compare lines the two up and renders the speedup
// column. TestSweepSharedDoesLessWork pins the compute-count ratio
// deterministically in CI, so the committed JSON is evidence, not the
// gate. Run both modes with `make bench-optimizer`.

import (
	"os"
	"testing"

	"statebench/internal/core"
	"statebench/internal/payload"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
)

// benchSpaces is the benchmark's configuration space: the ML training
// family's memory sweep plus a mapreduce shape sweep, 220 candidate
// configurations across every registered style.
func benchSpaces() []Space {
	mr := testSpace()
	mr.MemTiersMB = []int{0, 1024}
	mr.FanOuts = []int{4, 6, 8}
	mr.Chunks = []int{2, 3, 4}
	return []Space{
		{
			Workload: "ml-training-small",
			Build: func(c Config) core.Workflow {
				w := mltrain.New(mlpipe.Small)
				w.MemMB = c.MemMB
				return w
			},
			MemTiersMB: []int{0, 512, 1024, 2048},
		},
		mr,
	}
}

// BenchmarkOptimizerSweep sweeps the 220-config space once per
// iteration. STATEBENCH_SWEEP_COLD=1 selects the cold baseline (a
// private fresh payload engine per candidate, no delta memo);
// otherwise the sweep shares one engine, which is the subcommand's
// mode. The emitted candidates are byte-identical either way — the
// golden and mode-equivalence tests pin that — so the pair measures
// pure harness cost.
func BenchmarkOptimizerSweep(b *testing.B) {
	cold := os.Getenv("STATEBENCH_SWEEP_COLD") != ""
	spaces := benchSpaces()
	configs := 0
	for _, s := range spaces {
		configs += len(Enumerate(s))
	}
	if configs < 200 {
		b.Fatalf("benchmark space shrank to %d configs, want >= 200", configs)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := Options{Iters: 3, Warmup: 1, Seed: 42, Cold: cold}
		if !cold {
			o.Engine = payload.NewEngine()
		}
		campaigns := 0
		for _, s := range spaces {
			r, err := Sweep(s, o)
			if err != nil {
				b.Fatal(err)
			}
			if len(r.Frontier()) == 0 {
				b.Fatal("empty frontier")
			}
			campaigns += r.Evals
		}
		b.ReportMetric(float64(campaigns), "campaigns")
		b.ReportMetric(float64(configs), "configs")
	}
}
