package optimizer

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV emits the full sweep record — frontier, dominated set, and
// statically excluded configurations with their reasons — as one CSV
// table. Latency is the measured p50 in milliseconds, cost the mean
// per-run bill in USD; both are empty on excluded rows. delta_of names
// the representative configuration a candidate's measurement resolved
// from (empty when the candidate was measured itself), and advisories
// carries the static payload-cap lint findings, semicolon-joined.
func WriteCSV(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "impl", "mem_mb", "fan_out", "chunk",
		"status", "latency_ms", "cost_usd", "delta_of", "reason", "advisories",
	}); err != nil {
		return err
	}
	for _, r := range results {
		for i := range r.Candidates {
			c := &r.Candidates[i]
			lat, cost := "", ""
			if c.Status != StatusExcluded {
				lat = fmt.Sprintf("%.3f", float64(c.Lat.Microseconds())/1e3)
				cost = fmt.Sprintf("%.6f", c.Cost)
			}
			adv := ""
			for j, a := range c.Advisories {
				if j > 0 {
					adv += "; "
				}
				adv += a
			}
			if err := cw.Write([]string{
				c.Config.Workload,
				string(c.Config.Impl),
				fmt.Sprintf("%d", c.Config.MemMB),
				fmt.Sprintf("%d", c.Config.FanOut),
				fmt.Sprintf("%d", c.Config.Chunk),
				c.Status,
				lat,
				cost,
				c.DeltaOf,
				c.Reason,
				adv,
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
