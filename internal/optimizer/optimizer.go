// Package optimizer is the cross-cloud cost/latency sweep engine: it
// mechanizes the paper's headline artifact — the hand-built
// cost-vs-latency comparison across providers — as a deterministic
// search over the configuration space the registries already expose
// (implementation style × provider × memory tier × fan-out ×
// chunking).
//
// A sweep has four phases. Enumeration walks the declared Space and
// yields every candidate configuration in a canonical order.  Static
// pruning rejects configurations no simulation could ever measure —
// styles the workload's IR cannot lower to (flow.ExcludeReason),
// fan-outs beyond the IR limit — and attaches the payload-cap lint's
// advisories; every rejection carries its reason, so the dominated-set
// CSV never silently drops a configuration. Evaluation measures the
// survivors on the parallel campaign scheduler with one payload engine
// shared across the whole sweep, so identical stage computations
// (training the same dataset, counting the same corpus chunk) happen
// once per sweep rather than once per configuration; configurations
// whose canonical signatures collide (a memory tier the provider does
// not bill, a fan-out a monolith ignores) resolve from a single-flight
// memo without replaying the campaign at all. Classification finally
// computes the Pareto frontier over (p50 latency, mean per-run cost)
// plus the cheapest-under-SLO and fastest-under-budget picks.
//
// Everything the optimizer knows about providers comes from the
// core.ProviderSpec and flow.Lowerer registries — the package imports
// no provider and no workload, so a provider registered tomorrow is
// swept tomorrow. Determinism is inherited from the simulator:
// candidate order, evaluation results, and every derived artifact are
// byte-identical at any worker count and under any enumeration order.
package optimizer

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"statebench/internal/core"
	"statebench/internal/flow"
	"statebench/internal/obs/metrics"
	"statebench/internal/parallel"
	"statebench/internal/payload"
)

// Config is one candidate configuration of the sweep space. The zero
// value of each knob means "the workload or provider default", so a
// space that does not sweep a dimension yields candidates with that
// dimension at 0.
type Config struct {
	// Workload is the workload family name ("ml-training-small").
	Workload string
	// Impl is the implementation style (provider × orchestration).
	Impl core.Impl
	// MemMB is the provisioned memory tier (0 = provider default).
	MemMB int
	// FanOut is the workload's fan-out width (0 = workload default).
	FanOut int
	// Chunk is the workload's chunking knob (0 = workload default) —
	// reducer/partition count for MapReduce-shaped workloads.
	Chunk int
}

// Label renders the configuration compactly and uniquely within its
// workload: swept dimensions appear, defaulted ones do not.
func (c Config) Label() string {
	parts := []string{string(c.Impl)}
	if c.MemMB > 0 {
		parts = append(parts, fmt.Sprintf("mem%d", c.MemMB))
	}
	if c.FanOut > 0 {
		parts = append(parts, fmt.Sprintf("fan%d", c.FanOut))
	}
	if c.Chunk > 0 {
		parts = append(parts, fmt.Sprintf("chunk%d", c.Chunk))
	}
	return strings.Join(parts, "/")
}

// less orders configurations canonically: impl (lexical), then memory,
// fan-out, chunk. The sweep sorts candidates with this order after
// enumeration, which is what makes the emitted frontier invariant
// under the space's declaration order.
func (c Config) less(o Config) bool {
	if c.Impl != o.Impl {
		return c.Impl < o.Impl
	}
	if c.MemMB != o.MemMB {
		return c.MemMB < o.MemMB
	}
	if c.FanOut != o.FanOut {
		return c.FanOut < o.FanOut
	}
	return c.Chunk < o.Chunk
}

// Space declares one workload family's sweep dimensions. The optimizer
// learns everything else — which styles exist, which the workload
// lowers to, whether a memory tier shapes the bill — from the core and
// flow registries, so a Space is pure data plus one constructor.
type Space struct {
	// Workload is the family name stamped on every candidate.
	Workload string
	// Build returns a fresh workload with the candidate's knobs
	// applied. Zero knobs mean defaults; Build must be cheap (the
	// optimizer calls it for static inspection as well as evaluation).
	Build func(c Config) core.Workflow
	// MemTiersMB, FanOuts, and Chunks list the dimension values to
	// sweep; an empty dimension means {0} (defaults only). Memory
	// tiers must be valid on every swept provider (GCP validates its
	// discrete tier list at registration).
	MemTiersMB []int
	FanOuts    []int
	Chunks     []int
	// Impls restricts the style dimension; nil sweeps every registered
	// style, in provider registration order.
	Impls []core.Impl
	// ShapeIrrelevantClasses lists graph classes whose lowering
	// ignores FanOut and Chunk — a monolith that recomputes the whole
	// input regardless of the declared fan-out — letting delta
	// evaluation collapse those dimensions for styles of that class.
	ShapeIrrelevantClasses []flow.Class
}

// dim returns values, or the single-default dimension when empty.
func dim(values []int) []int {
	if len(values) == 0 {
		return []int{0}
	}
	return values
}

// Candidate statuses after a sweep.
const (
	// StatusFrontier marks a measured, non-dominated configuration.
	StatusFrontier = "frontier"
	// StatusDominated marks a measured configuration beaten on both
	// axes by another; Reason names a dominating configuration.
	StatusDominated = "dominated"
	// StatusExcluded marks a statically pruned configuration; Reason
	// explains why it could never run.
	StatusExcluded = "excluded"
)

// Candidate is one configuration's full sweep record.
type Candidate struct {
	Config Config
	// Status is one of the Status* constants.
	Status string
	// Reason is the exclusion reason (StatusExcluded) or the label of
	// a dominating configuration (StatusDominated); empty on the
	// frontier.
	Reason string
	// Advisories holds the static payload-cap lint findings for this
	// style — advisory, never a prune: the paper deliberately
	// measures what happens at the caps.
	Advisories []string
	// DeltaOf names the canonical representative of this candidate's
	// evaluation signature when it is not the candidate itself: the
	// two configurations are provably indistinguishable (the provider
	// does not bill the differing tier, or the lowering ignores the
	// differing shape), so the sweep measures the representative once
	// and this candidate resolves from the memo. Static annotation:
	// identical in shared and cold modes.
	DeltaOf string
	// sig is the evaluation-signature key (internal).
	sig string

	// Lat is the measured end-to-end p50; Cost the mean per-run bill.
	// Zero on excluded candidates.
	Lat  time.Duration
	Cost float64
	// Series is the underlying campaign measurement (shared with the
	// representative for delta-resolved candidates).
	Series *core.Series
}

// Result is one workload family's sweep outcome.
type Result struct {
	Workload string
	// Candidates holds every enumerated configuration in canonical
	// order — frontier, dominated, and excluded alike.
	Candidates []Candidate
	// Evals counts the measurement campaigns actually simulated;
	// len(measured candidates) - Evals resolved from the delta memo.
	Evals int
	// Payload is the merged per-campaign payload-cache activity of
	// the sweep's evaluations (first-touch attribution per campaign,
	// summed with Stats.Merge — deterministic at any worker count).
	Payload payload.Stats
}

// Options tunes a sweep.
type Options struct {
	// Iters is the per-candidate measured iteration count.
	Iters int
	// Gap is the virtual time between iterations (0 = 30s).
	Gap time.Duration
	// Warmup runs unmeasured warmup iterations per campaign.
	Warmup int
	// Seed is the campaign seed; every candidate's environment derives
	// from it alone, so results are byte-identical across runs.
	Seed uint64
	// Workers bounds candidate-evaluation concurrency (0 = GOMAXPROCS,
	// 1 = strictly sequential). Never changes results.
	Workers int
	// Engine is the sweep-shared payload engine; nil creates a fresh
	// one per Sweep call. Passing a long-lived engine makes repeated
	// sweeps (the serve-mode what-if path) resolve from the memo.
	Engine *payload.Engine
	// Cold evaluates every candidate with a private fresh payload
	// engine and no signature memo — the pre-sweep-engine baseline
	// the benchmarks compare against. The emitted candidates are
	// byte-identical to the shared mode; only the work differs.
	Cold bool
	// Metrics, when non-nil, enables span tracing inside every
	// campaign and aggregates counters into the registry.
	Metrics *metrics.Registry
}

// flowDefiner is the static-inspection seam every IR-defined workload
// exposes (the graph subcommand uses the same one).
type flowDefiner interface {
	FlowDef() (*flow.Definition, error)
}

// Enumerate yields the space's candidate set in canonical order with
// static pruning and signature analysis applied, but nothing measured:
// excluded candidates carry their reasons, measurable ones their
// delta-evaluation representatives. Sweep calls this first; it is
// exported so tests and planning tools can inspect a space without
// paying for simulation.
func Enumerate(space Space) []Candidate {
	impls := space.Impls
	if impls == nil {
		impls = core.RegisteredImpls()
	}
	var cands []Candidate
	for _, impl := range impls {
		for _, mem := range dim(space.MemTiersMB) {
			for _, fan := range dim(space.FanOuts) {
				for _, chunk := range dim(space.Chunks) {
					cands = append(cands, Candidate{Config: Config{
						Workload: space.Workload,
						Impl:     impl,
						MemMB:    mem,
						FanOut:   fan,
						Chunk:    chunk,
					}})
				}
			}
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].Config.less(cands[b].Config) })

	// Static pruning: one IR definition per distinct shape is enough
	// for every style's support gate and lint.
	type shapeKey struct{ mem, fan, chunk int }
	defs := map[shapeKey]*flow.Definition{}
	defFor := func(c Config) *flow.Definition {
		k := shapeKey{c.MemMB, c.FanOut, c.Chunk}
		if d, ok := defs[k]; ok {
			return d
		}
		var d *flow.Definition
		if fd, ok := space.Build(c).(flowDefiner); ok {
			d, _ = fd.FlowDef()
		}
		defs[k] = d
		return d
	}

	seen := map[string]string{} // signature -> representative label
	for i := range cands {
		c := &cands[i]
		if c.Config.FanOut > flow.MaxFanOut {
			c.Status = StatusExcluded
			c.Reason = fmt.Sprintf("fan-out %d exceeds the IR fan-out limit %d", c.Config.FanOut, flow.MaxFanOut)
			continue
		}
		def := defFor(c.Config)
		if def == nil {
			// Non-IR workload: fall back to the core support check.
			if !core.SupportsImpl(space.Build(c.Config), c.Config.Impl) {
				c.Status = StatusExcluded
				c.Reason = "style not supported by the workload"
			}
		} else if reason := flow.ExcludeReason(def, c.Config.Impl); reason != "" {
			c.Status = StatusExcluded
			c.Reason = reason
		} else {
			for _, f := range flow.LintPayloads(def) {
				if f.Impl == c.Config.Impl {
					c.Advisories = append(c.Advisories, f.String())
				}
			}
		}
		if c.Status == StatusExcluded {
			continue
		}
		c.sig = signature(space, c.Config)
		if rep, ok := seen[c.sig]; ok {
			c.DeltaOf = rep
		} else {
			seen[c.sig] = c.Config.Label()
		}
	}
	return cands
}

// signature canonicalizes a configuration for delta evaluation: two
// configurations with equal signatures are indistinguishable to the
// simulator and the billing model, so the sweep measures one. The
// collapses are registry-derived: a provider that bills consumed
// rather than configured memory (ProviderSpec.BillsConfiguredMem
// false) makes the memory tier irrelevant — in this codebase such
// providers' lowerings ignore the tier entirely — and a style whose
// graph class is declared shape-irrelevant ignores fan-out/chunking.
func signature(space Space, c Config) string {
	mem, fan, chunk := c.MemMB, c.FanOut, c.Chunk
	if info, ok := core.StyleOf(c.Impl); ok {
		if spec, ok := core.Provider(info.Kind); ok && !spec.BillsConfiguredMem {
			mem = 0
		}
	}
	if l, ok := flow.LowererFor(c.Impl); ok {
		for _, cl := range space.ShapeIrrelevantClasses {
			if l.Class() == cl {
				fan, chunk = 0, 0
				break
			}
		}
	}
	return fmt.Sprintf("%s|%s|mem%d|fan%d|chunk%d", c.Workload, c.Impl, mem, fan, chunk)
}

// Sweep enumerates, prunes, evaluates, and classifies one workload
// family's configuration space. The returned candidates are in
// canonical order and byte-stable: identical at any Options.Workers,
// under any Space declaration order, and between shared and cold
// evaluation modes.
func Sweep(space Space, o Options) (*Result, error) {
	if o.Iters <= 0 {
		o.Iters = 10
	}
	if o.Gap <= 0 {
		o.Gap = 30 * time.Second
	}
	eng := o.Engine
	if eng == nil && !o.Cold {
		eng = payload.NewEngine()
	}
	memo := NewMemo(eng)

	cands := Enumerate(space)
	err := parallel.ForEach(o.Workers, len(cands), func(i int) error {
		c := &cands[i]
		if c.Status == StatusExcluded {
			return nil
		}
		mo := core.MeasureOptions{
			Iters:   o.Iters,
			Gap:     o.Gap,
			Warmup:  o.Warmup,
			Seed:    o.Seed,
			Metrics: o.Metrics,
		}
		if o.Metrics != nil {
			mo.Tracing = true
		}
		var s *core.Series
		var err error
		if o.Cold {
			// Baseline mode: a private engine per candidate, no memo —
			// every campaign replays all of its compute.
			mo.PayloadCache = payload.NewEngine()
			s, err = core.Measure(space.Build(c.Config), c.Config.Impl, mo)
		} else {
			mo.PayloadCache = eng
			s, err = memo.Series(c.sig, func() (*core.Series, error) {
				return core.Measure(space.Build(c.Config), c.Config.Impl, mo)
			})
		}
		if err != nil {
			return fmt.Errorf("optimizer: %s/%s: %w", c.Config.Workload, c.Config.Label(), err)
		}
		c.Series = s
		c.Lat = s.E2E.Median()
		c.Cost = s.MeanBill.Total()
		return nil
	})
	if err != nil {
		return nil, err
	}

	Classify(cands)

	r := &Result{Workload: space.Workload, Candidates: cands}
	seenSig := map[string]bool{}
	for i := range cands {
		c := &cands[i]
		if c.Status == StatusExcluded {
			continue
		}
		if !seenSig[c.sig] {
			seenSig[c.sig] = true
			r.Evals++
			// In cold mode every candidate ran its own campaign; count
			// and merge them all so the two modes report their true
			// work honestly.
		}
		if o.Cold || c.DeltaOf == "" {
			r.Payload = r.Payload.Merge(c.Series.Payload)
		}
	}
	if o.Cold {
		r.Evals = 0
		for i := range cands {
			if cands[i].Status != StatusExcluded {
				r.Evals++
			}
		}
	}
	return r, nil
}

// Classify computes Pareto domination over the measured candidates in
// place: a candidate is dominated when another measured candidate is
// no worse on both axes and strictly better on at least one; ties on
// both axes (delta-equivalent configurations) dominate nobody and
// share the frontier. Reason names the first dominating candidate in
// canonical order. Exported so invariance tests can re-classify
// merged candidate sets from sharded sweeps.
func Classify(cands []Candidate) {
	for i := range cands {
		c := &cands[i]
		if c.Status == StatusExcluded {
			continue
		}
		c.Status = StatusFrontier
		c.Reason = ""
		for j := range cands {
			d := &cands[j]
			if j == i || d.Status == StatusExcluded {
				continue
			}
			if d.Lat <= c.Lat && d.Cost <= c.Cost && (d.Lat < c.Lat || d.Cost < c.Cost) {
				c.Status = StatusDominated
				c.Reason = "dominated by " + d.Config.Label()
				break
			}
		}
	}
}

// Frontier returns the measured non-dominated candidates ordered by
// (latency, cost, canonical order).
func (r *Result) Frontier() []*Candidate {
	var out []*Candidate
	for i := range r.Candidates {
		if r.Candidates[i].Status == StatusFrontier {
			out = append(out, &r.Candidates[i])
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Lat != out[b].Lat {
			return out[a].Lat < out[b].Lat
		}
		if out[a].Cost != out[b].Cost {
			return out[a].Cost < out[b].Cost
		}
		return out[a].Config.less(out[b].Config)
	})
	return out
}

// CheapestUnder returns the cheapest measured candidate whose p50
// latency meets the SLO, or nil when none does. Ties break toward
// lower latency, then canonical order.
func (r *Result) CheapestUnder(slo time.Duration) *Candidate {
	var best *Candidate
	for i := range r.Candidates {
		c := &r.Candidates[i]
		if c.Status == StatusExcluded || c.Lat > slo {
			continue
		}
		if best == nil || c.Cost < best.Cost ||
			(c.Cost == best.Cost && (c.Lat < best.Lat || (c.Lat == best.Lat && c.Config.less(best.Config)))) {
			best = c
		}
	}
	return best
}

// FastestUnder returns the fastest measured candidate whose mean
// per-run cost fits the budget, or nil when none does. Ties break
// toward lower cost, then canonical order.
func (r *Result) FastestUnder(budget float64) *Candidate {
	var best *Candidate
	for i := range r.Candidates {
		c := &r.Candidates[i]
		if c.Status == StatusExcluded || c.Cost > budget {
			continue
		}
		if best == nil || c.Lat < best.Lat ||
			(c.Lat == best.Lat && (c.Cost < best.Cost || (c.Cost == best.Cost && c.Config.less(best.Config)))) {
			best = c
		}
	}
	return best
}
