package optimizer

import (
	"statebench/internal/core"
	"statebench/internal/payload"
)

// Memo is the sweep's config-level delta-evaluation store: a thin
// typed view over a payload engine that memoizes whole measurement
// campaigns by canonical configuration signature. Two candidates with
// equal signatures are indistinguishable to the simulator (see
// signature), so the first to arrive runs the campaign and the rest —
// including candidates racing on other workers, via the engine's
// single-flight machinery — share its Series.
//
// Because the store is the payload engine itself, a memoized campaign
// survives exactly as long as the engine: a per-Sweep engine gives
// within-sweep delta evaluation, while a long-lived engine (the
// serve-mode what-if path) lets successive sweeps over overlapping
// spaces skip re-measuring unchanged configurations.
type Memo struct {
	eng *payload.Engine
}

// NewMemo returns a memo backed by eng. A nil or disabled engine
// yields a pass-through memo: every Series call measures.
func NewMemo(eng *payload.Engine) *Memo { return &Memo{eng: eng} }

// Series returns the campaign for signature sig, measuring it with
// measure on first touch. The memoized Series is shared by reference
// and must be treated as immutable. Entries are recorded with size 0:
// a Series is harness bookkeeping, not workload payload, so it must
// not distort the engine's byte accounting.
func (m *Memo) Series(sig string, measure func() (*core.Series, error)) (*core.Series, error) {
	if m == nil || !m.eng.Enabled() {
		return measure()
	}
	key := payload.Key{
		Workload: "optimizer",
		Stage:    "eval",
		Input:    payload.DigestString(sig),
	}
	s, _, err := payload.Get(m.eng, key, func() (*core.Series, int, error) {
		s, err := measure()
		return s, 0, err
	})
	return s, err
}
