//go:build race

package statebench_test

// raceEnabled reports whether the race detector is compiled in; the
// determinism test downscales under it (10-20x execution overhead).
const raceEnabled = true
